"""Timed network partitions: the plan, the injector seam, and healing.

A :class:`PartitionEvent` cuts cross-partition copies at the physical
transmission seam for a bounded window, then heals implicitly.  The
properties that matter: the cut is time-deterministic (no RNG draws, so
zero-fault schedules stay bit-identical), direction-aware for asymmetric
failures, validated at system wiring time, and — because a partitioned
plan always gets the reliable-delivery layer — every cut copy is
retransmitted to exactly-once delivery after the heal.
"""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    ChaosNetwork,
    CrashEvent,
    FaultPlan,
    PartitionEvent,
    build_network,
)
from repro.net import MessageKind, constant_latency
from repro.sim import RngRegistry, Simulator


class TestPartitionEvent:
    def test_schedule_validated(self):
        with pytest.raises(SimulationError):
            PartitionEvent(side_a=("a",), side_b=("b",), at=-1.0, duration=1.0)
        with pytest.raises(SimulationError):
            PartitionEvent(side_a=("a",), side_b=("b",), at=0.0, duration=0.0)

    def test_sides_validated(self):
        with pytest.raises(SimulationError):
            PartitionEvent(side_a=(), side_b=("b",), at=0.0, duration=1.0)
        with pytest.raises(SimulationError):
            # A node on both sides of the cut is a contradiction.
            PartitionEvent(side_a=("a", "b"), side_b=("b",), at=0.0,
                           duration=1.0)

    def test_symmetric_cut_and_heal_window(self):
        event = PartitionEvent(side_a=("a",), side_b=("b", "c"), at=2.0,
                               duration=3.0)
        assert event.heal_at == 5.0
        assert not event.cuts("a", "b", 1.9)       # before the window
        assert event.cuts("a", "b", 2.0)           # inclusive start
        assert event.cuts("b", "a", 4.0)           # symmetric: reverse too
        assert event.cuts("a", "c", 4.999)
        assert not event.cuts("a", "b", 5.0)       # exclusive heal instant
        assert not event.cuts("b", "c", 3.0)       # same side: unaffected
        assert not event.cuts("x", "b", 3.0)       # outsiders: unaffected

    def test_asymmetric_cut_is_one_way(self):
        event = PartitionEvent(side_a=("a",), side_b=("b",), at=0.0,
                               duration=10.0, symmetric=False)
        assert event.cuts("a", "b", 5.0)
        assert not event.cuts("b", "a", 5.0)

    def test_plan_cut_and_lossy(self):
        event = PartitionEvent(side_a=("a",), side_b=("b",), at=0.0,
                               duration=4.0)
        plan = FaultPlan(partitions=(event,))
        assert plan.cut("a", "b", 1.0)
        assert not plan.cut("a", "b", 4.0)
        # Partitioned plans need the reliable layer (cut copies must be
        # retransmitted after the heal, not lost forever).
        assert plan.lossy
        assert not FaultPlan().lossy


class TestPartitionInjection:
    def _network(self, plan):
        sim = Simulator()
        network = build_network(sim, plan, rngs=RngRegistry(1),
                                latency=constant_latency(1.0))
        network.register("a")
        network.register("b")
        return sim, network

    def test_partition_only_plan_gets_reliable_layer(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(side_a=("a",), side_b=("b",), at=0.0,
                           duration=5.0),
        ))
        _, network = self._network(plan)
        assert isinstance(network, ChaosNetwork)

    def test_cut_copies_counted_and_delivered_after_heal(self):
        """A message sent mid-partition reaches its mailbox exactly once,
        and only after the heal — the retransmit timer outlives the cut."""
        plan = FaultPlan(partitions=(
            PartitionEvent(side_a=("a",), side_b=("b",), at=0.0,
                           duration=5.0),
        ))
        sim, network = self._network(plan)
        network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload="x")
        sim.run()
        inbox = network.mailbox("b").drain()
        assert [m.payload for m in inbox] == ["x"]
        assert inbox[0].delivered_at >= 5.0
        assert network.stats.partition_dropped > 0
        assert network.pending_unacked == 0

    def test_healed_partition_draws_and_drops_nothing(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(side_a=("a",), side_b=("b",), at=0.0,
                           duration=1.0),
        ))
        sim, network = self._network(plan)

        def send_all():
            for i in range(5):
                network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload=i)

        sim.schedule(2.0, send_all)  # strictly after the heal
        sim.run()
        assert len(network.mailbox("b")) == 5
        assert network.stats.partition_dropped == 0
        assert network.stats.retransmits == 0

    def test_asymmetric_partition_cuts_one_direction_only(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(side_a=("a",), side_b=("b",), at=0.0,
                           duration=4.0, symmetric=False),
        ))
        sim, network = self._network(plan)
        network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload="cut")
        network.send("b", "a", MessageKind.SUBTXN_REQUEST, payload="open")
        sim.run(until=3.0)
        assert len(network.mailbox("b")) == 0
        assert [m.payload for m in network.mailbox("a").drain()] == ["open"]


class TestWiringValidation:
    def _system(self, plan):
        from repro.core import ThreeVSystem

        return ThreeVSystem(["p", "q"], seed=1, faults=plan)

    def test_unknown_partition_member_rejected(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(side_a=("p",), side_b=("typo",), at=0.0,
                           duration=1.0),
        ))
        with pytest.raises(SimulationError, match="typo"):
            self._system(plan)

    def test_unknown_crash_target_rejected(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node="ghost", at=1.0, down_for=1.0),
        ))
        with pytest.raises(SimulationError, match="ghost"):
            self._system(plan)

    def test_coordinator_is_a_valid_extra_target_on_3v_only(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node="coordinator", at=1.0, down_for=1.0),
        ))
        self._system(plan)  # 3V declares the extra target: accepted
        from repro.baselines.nocoord import NoCoordSystem

        with pytest.raises(SimulationError, match="coordinator"):
            NoCoordSystem(["p", "q"], seed=1, faults=plan)


class TestStormPartitions:
    def test_default_crash_window_preserves_schedules(self):
        kwargs = dict(drop_rate=0.1, crash_count=2, fault_seed=9,
                      duration=30.0)
        nodes = ["a", "b", "c"]
        assert (FaultPlan.storm(nodes, **kwargs)
                == FaultPlan.storm(nodes, crash_window=0.7, **kwargs))

    def test_crash_window_confines_whole_cycles(self):
        plan = FaultPlan.storm(["p", "q"], crash_count=3, fault_seed=3,
                               duration=40.0, crash_window=0.5)
        assert plan.crashes
        for event in plan.crashes:
            assert event.at + event.down_for < 0.5 * 40.0

    def test_crash_window_validated(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(SimulationError):
                FaultPlan.storm(["p"], crash_count=1, crash_window=bad)
        with pytest.raises(SimulationError):
            FaultPlan.storm(["p"], partition_count=-1)

    def test_partition_storm_deterministic_and_confined(self):
        nodes = ["n0", "n1", "n2", "n3"]
        kwargs = dict(crash_count=1, partition_count=2, fault_seed=11,
                      duration=30.0)
        one = FaultPlan.storm(nodes, **kwargs)
        two = FaultPlan.storm(list(reversed(nodes)), **kwargs)
        assert one == two
        assert len(one.partitions) == 2
        for event in one.partitions:
            assert event.heal_at < 0.7 * 30.0
            # Each cut splits the sorted node list into two cohorts.
            assert sorted(event.side_a + event.side_b) == sorted(nodes)

    def test_partitions_never_perturb_the_crash_schedule(self):
        kwargs = dict(crash_count=2, fault_seed=5, duration=25.0)
        without = FaultPlan.storm(["a", "b", "c"], **kwargs)
        with_cuts = FaultPlan.storm(["a", "b", "c"], partition_count=3,
                                    **kwargs)
        assert without.crashes == with_cuts.crashes
        assert not without.partitions and len(with_cuts.partitions) == 3
