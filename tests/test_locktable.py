"""Unit tests for the commuting/non-commuting lock table (Section 5)."""

import pytest

from repro.errors import DeadlockAbort, LockError
from repro.sim import Simulator
from repro.storage import LockMode, LockTable, compatible


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def locks(sim):
    return LockTable(sim)


def granted(event, sim):
    sim.run()
    return event.triggered and event.ok


class TestCompatibilityMatrix:
    def test_commuting_locks_mutually_compatible(self):
        assert compatible(LockMode.CR, LockMode.CR)
        assert compatible(LockMode.CR, LockMode.CW)
        assert compatible(LockMode.CW, LockMode.CR)
        assert compatible(LockMode.CW, LockMode.CW)

    def test_commuting_write_conflicts_non_commuting(self):
        assert not compatible(LockMode.CW, LockMode.NR)
        assert not compatible(LockMode.CW, LockMode.NW)
        assert not compatible(LockMode.NR, LockMode.CW)
        assert not compatible(LockMode.NW, LockMode.CW)

    def test_reads_compatible_across_families(self):
        assert compatible(LockMode.CR, LockMode.NR)
        assert compatible(LockMode.NR, LockMode.CR)

    def test_nw_conflicts_with_everything(self):
        for mode in LockMode.ALL:
            assert not compatible(LockMode.NW, mode)
            assert not compatible(mode, LockMode.NW)

    def test_unknown_mode_raises(self):
        with pytest.raises(LockError):
            compatible("X", LockMode.CR)


class TestCommutingFastPath:
    def test_many_commuting_writers_never_wait(self, sim, locks):
        """The zero-wait property: CW locks are always granted immediately."""
        for i in range(50):
            event = locks.acquire("balance", LockMode.CW, f"t{i}", float(i))
            assert event.triggered and event.ok
        assert locks.immediate_grants == 50
        assert locks.waits == 0

    def test_release_all_clears_holdings(self, sim, locks):
        locks.acquire("k", LockMode.CW, "t1", 0.0)
        locks.release_all("t1")
        assert locks.holders_of("k") == {}
        assert locks.held_keys("t1") == set()

    def test_reacquire_same_mode_is_noop_grant(self, sim, locks):
        first = locks.acquire("k", LockMode.CW, "t1", 0.0)
        second = locks.acquire("k", LockMode.CW, "t1", 0.0)
        assert first.ok and second.ok
        assert locks.holders_of("k") == {"t1": LockMode.CW}

    def test_upgrade_cr_to_cw(self, sim, locks):
        locks.acquire("k", LockMode.CR, "t1", 0.0)
        upgrade = locks.acquire("k", LockMode.CW, "t1", 0.0)
        assert upgrade.ok
        assert locks.holders_of("k") == {"t1": LockMode.CW}

    def test_cross_family_reacquire_rejected(self, sim, locks):
        locks.acquire("k", LockMode.CR, "t1", 0.0)
        with pytest.raises(LockError):
            locks.acquire("k", LockMode.NW, "t1", 0.0)


class TestNonCommutingBlocking:
    def test_nw_blocks_cw_until_release(self, sim, locks):
        locks.acquire("k", LockMode.NW, "nc", 0.0)
        # The commuting requester is older than the holder, so it waits
        # (wait-die applies uniformly; a younger requester would die).
        waiter = locks.acquire("k", LockMode.CW, "wb", -1.0)
        assert not waiter.triggered
        assert locks.queue_length("k") == 1
        locks.release_all("nc")
        sim.run()
        assert waiter.ok
        assert locks.holders_of("k") == {"wb": LockMode.CW}

    def test_fifo_no_overtaking_past_queue(self, sim, locks):
        """A compatible latecomer must not jump over a queued conflicting
        request (prevents starvation of NW behind a stream of CWs)."""
        locks.acquire("k", LockMode.CW, "t1", 0.0)
        nw = locks.acquire("k", LockMode.NW, "t2", -1.0)  # older: waits
        cw = locks.acquire("k", LockMode.CW, "t3", 2.0)  # queued behind NW
        assert not nw.triggered and not cw.triggered
        locks.release_all("t1")
        sim.run()
        assert nw.ok
        assert not cw.triggered
        locks.release_all("t2")
        sim.run()
        assert cw.ok

    def test_wait_die_younger_requester_dies(self, sim, locks):
        locks.acquire("k", LockMode.NW, "older", 0.0)
        young = locks.acquire("k", LockMode.NW, "younger", 5.0)
        sim.run()
        assert young.triggered and not young.ok
        with pytest.raises(DeadlockAbort):
            _ = young.value
        assert locks.deadlock_aborts == 1

    def test_wait_die_older_requester_waits(self, sim, locks):
        locks.acquire("k", LockMode.NW, "younger", 5.0)
        old = locks.acquire("k", LockMode.NW, "older", 1.0)
        assert not old.triggered
        locks.release_all("younger")
        sim.run()
        assert old.ok

    def test_wait_time_accounted(self, sim, locks):
        locks.acquire("k", LockMode.NW, "a", 0.0)
        locks.acquire("k", LockMode.NW, "b", 0.0 - 1.0)  # older, will wait
        sim.schedule(7.0, locks.release_all, "a")
        sim.run()
        assert locks.wait_time == pytest.approx(7.0)

    def test_cancel_waits_removes_queued_request(self, sim, locks):
        locks.acquire("k", LockMode.NW, "a", 0.0)
        locks.acquire("k", LockMode.NW, "b", -1.0)
        locks.cancel_waits("b")
        assert locks.queue_length("k") == 0
        locks.release_all("a")
        sim.run()
        assert locks.holders_of("k") == {}

    def test_upgrade_conflict_dies(self, sim, locks):
        locks.acquire("k", LockMode.NR, "a", 0.0)
        locks.acquire("k", LockMode.NR, "b", 1.0)
        upgrade = locks.acquire("k", LockMode.NW, "a", 0.0)
        sim.run()
        assert upgrade.triggered and not upgrade.ok

    def test_release_unknown_txn_is_noop(self, sim, locks):
        locks.release_all("ghost")

    def test_unknown_mode_rejected(self, sim, locks):
        with pytest.raises(LockError):
            locks.acquire("k", "SUPER", "t", 0.0)
