"""Unit tests for the transaction model: specs, index, history."""

import pytest

from repro.errors import InvalidTransactionSpec
from repro.storage import Assign, Increment, Record
from repro.txn import (
    History,
    ReadOp,
    SubtxnSpec,
    TransactionSpec,
    TxnIndex,
    TxnKind,
    WaitReason,
    WriteOp,
    subtxn_id,
)


def tree(name="t"):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="a",
            ops=[WriteOp("x", Increment(1))],
            children=[
                SubtxnSpec(node="b", ops=[ReadOp("y")], label="b"),
                SubtxnSpec(
                    node="c",
                    ops=[WriteOp("z", Record("obs"))],
                    children=[SubtxnSpec(node="a", ops=[])],
                ),
            ],
        ),
    )


class TestClassification:
    def test_update_with_commuting_ops_is_well_behaved(self):
        spec = tree()
        assert not spec.is_read_only
        assert spec.is_well_behaved

    def test_read_only_detection(self):
        spec = TransactionSpec(
            name="r",
            root=SubtxnSpec(
                node="a", ops=[ReadOp("x")],
                children=[SubtxnSpec(node="b", ops=[ReadOp("y")])],
            ),
        )
        assert spec.is_read_only
        assert spec.is_well_behaved

    def test_assign_makes_non_well_behaved(self):
        spec = TransactionSpec(
            name="nc", root=SubtxnSpec(node="a", ops=[WriteOp("x", Assign(1))])
        )
        assert not spec.is_well_behaved
        assert not spec.is_read_only

    def test_nodes_and_keys(self):
        spec = tree()
        assert spec.nodes == {"a", "b", "c"}
        assert spec.keys_written == {"x", "z"}
        assert spec.keys_read == {"y"}
        assert spec.subtxn_count() == 4


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(InvalidTransactionSpec):
            TransactionSpec(name="", root=SubtxnSpec(node="a"))

    def test_empty_node_rejected(self):
        with pytest.raises(InvalidTransactionSpec):
            TransactionSpec(name="t", root=SubtxnSpec(node=""))

    def test_shared_subtree_rejected(self):
        shared = SubtxnSpec(node="b")
        with pytest.raises(InvalidTransactionSpec):
            TransactionSpec(
                name="t",
                root=SubtxnSpec(node="a", children=[shared, shared]),
            )

    def test_bad_op_type_rejected(self):
        with pytest.raises(InvalidTransactionSpec):
            TransactionSpec(
                name="t", root=SubtxnSpec(node="a", ops=["not-an-op"])
            )

    def test_read_only_abort_rejected(self):
        with pytest.raises(InvalidTransactionSpec):
            TransactionSpec(
                name="t",
                root=SubtxnSpec(node="a", ops=[ReadOp("x")], abort_here=True),
            )


class TestIndex:
    def test_ids_with_labels_and_positions(self):
        index = TxnIndex(tree())
        assert set(index.by_id) == {"t", "tb", "t.1", "t.1.0"}
        assert index.parent["tb"] == "t"
        assert index.parent["t.1.0"] == "t.1"
        assert index.children["t"] == ["tb", "t.1"]
        assert index.node_of("t.1.0") == "a"

    def test_neighbours(self):
        index = TxnIndex(tree())
        assert set(index.neighbours("t")) == {"tb", "t.1"}
        assert set(index.neighbours("t.1")) == {"t.1.0", "t"}
        assert set(index.neighbours("tb")) == {"t"}

    def test_duplicate_labels_rejected(self):
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(
                node="a",
                children=[
                    SubtxnSpec(node="b", label="x"),
                    SubtxnSpec(node="c", label="x"),
                ],
            ),
        )
        with pytest.raises(InvalidTransactionSpec):
            TxnIndex(spec)

    def test_subtxn_id_helper(self):
        child_with_label = SubtxnSpec(node="b", label="q")
        child_plain = SubtxnSpec(node="b")
        assert subtxn_id("i", child_with_label, 0) == "iq"
        assert subtxn_id("i", child_plain, 2) == "i.2"


class TestHistory:
    def test_lifecycle(self):
        history = History()
        record = history.begin_txn("t1", TxnKind.UPDATE, 1, 5.0, "a")
        history.locally_committed("t1", 7.0)
        history.globally_completed("t1", 9.0)
        assert record.local_latency == 2.0
        assert record.global_latency == 4.0
        assert history.count(TxnKind.UPDATE) == 1
        assert history.count(TxnKind.READ) == 0

    def test_duplicate_name_rejected(self):
        history = History()
        history.begin_txn("t1", TxnKind.UPDATE, 1, 0.0, "a")
        with pytest.raises(ValueError):
            history.begin_txn("t1", TxnKind.UPDATE, 1, 0.0, "a")

    def test_local_commit_not_overwritten(self):
        history = History()
        history.begin_txn("t1", TxnKind.UPDATE, 1, 0.0, "a")
        history.locally_committed("t1", 3.0)
        history.locally_committed("t1", 8.0)
        assert history.txn("t1").local_commit_time == 3.0

    def test_abort_bookkeeping(self):
        history = History()
        history.begin_txn("t1", TxnKind.UPDATE, 1, 0.0, "a")
        history.aborted("t1", 4.0, "requested")
        history.compensated("t1")
        record = history.txn("t1")
        assert record.aborted
        assert record.compensated
        assert record.abort_reason == "requested"
        assert history.committed_txns() == []
        assert len(history.aborted_txns()) == 1

    def test_wait_accumulation(self):
        history = History()
        history.begin_txn("t1", TxnKind.UPDATE, 1, 0.0, "a")
        history.waited("t1", WaitReason.LOCK, 2.0)
        history.waited("t1", WaitReason.LOCK, 3.0)
        history.waited("t1", WaitReason.EXECUTOR, 1.0)
        history.waited("t1", WaitReason.REMOTE, 0.0)  # ignored
        record = history.txn("t1")
        assert record.waits == {"lock": 5.0, "executor": 1.0}
        assert record.total_wait == 6.0
        assert record.remote_wait == 0.0
        assert history.wait_episodes == {"lock": 2, "executor": 1}

    def test_remote_wait_aggregates_remote_reasons(self):
        history = History()
        history.begin_txn("t1", TxnKind.NONCOMMUTING, 1, 0.0, "a")
        history.waited("t1", WaitReason.REMOTE, 2.0)
        history.waited("t1", WaitReason.VERSION_GATE, 1.0)
        history.waited("t1", WaitReason.ADVANCEMENT, 0.5)
        history.waited("t1", WaitReason.EXECUTOR, 9.0)
        assert history.txn("t1").remote_wait == 3.5

    def test_detail_off_skips_events(self):
        from repro.txn import ReadEvent, WriteEvent

        history = History(detail=False)
        history.begin_txn("t1", TxnKind.READ, 0, 0.0, "a")
        history.read(ReadEvent(1.0, "t1", "t1", "a", "x", 0, 0, 42))
        history.wrote(WriteEvent(1.0, "t1", "t1", "a", "x", 0, 1, None))
        assert history.read_events == []
        assert history.write_events == []
        # But the per-txn read values are still tracked.
        assert history.txn("t1").reads == [("x", 42)]
