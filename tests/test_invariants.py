"""The invariant checker must actually catch violations (§4.4).

Each test corrupts a healthy system in one specific way and asserts the
corresponding check raises — guarding against a checker that silently
passes everything.
"""

import pytest

from repro.core import InvariantMonitor, ThreeVSystem, check_all
from repro.core.invariants import (
    check_version_agreement,
    check_version_bounds,
    check_version_counts,
)
from repro.errors import InvariantViolation


@pytest.fixture
def system():
    s = ThreeVSystem(["p", "q"], seed=1)
    s.load("p", "x", 0)
    s.load("q", "y", 0)
    return s


class TestHealthySystemPasses:
    def test_fresh_system(self, system):
        check_all(system)

    def test_after_traffic_and_advancement(self, system):
        from repro.storage import Increment
        from repro.txn import SubtxnSpec, TransactionSpec, WriteOp

        system.submit(TransactionSpec(
            name="t",
            root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(1))]),
        ))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        check_all(system)


class TestCorruptionsCaught:
    def test_vu_equal_to_vr(self, system):
        system.node("p").vu = system.node("p").vr
        with pytest.raises(InvariantViolation):
            check_version_bounds(system)

    def test_vu_too_far_ahead(self, system):
        system.node("p").vu = system.node("p").vr + 3
        with pytest.raises(InvariantViolation):
            check_version_bounds(system)

    def test_too_many_versions_idle(self, system):
        # Three live versions with no advancement running: property 1a.
        system.node("p").store.ensure_version("x", 1)
        system.node("p").store.ensure_version("x", 2)
        with pytest.raises(InvariantViolation):
            check_version_counts(system)

    def test_four_versions_always_wrong(self, system):
        store = system.node("p").store
        for version in (1, 2, 3):
            store.ensure_version("x", version)
        system.coordinator.running = True
        try:
            with pytest.raises(InvariantViolation):
                check_version_counts(system)
        finally:
            system.coordinator.running = False

    def test_read_version_disagreement_idle(self, system):
        system.node("p").vr = 1
        system.node("p").vu = 2
        with pytest.raises(InvariantViolation):
            check_version_agreement(system)

    def test_update_version_disagreement_idle(self, system):
        system.node("p").vu = 2
        with pytest.raises(InvariantViolation):
            check_version_agreement(system)

    def test_double_disagreement_during_advancement(self, system):
        system.coordinator.running = True
        try:
            # Differing on BOTH vu and vr violates property 2b.
            system.node("p").vu = 2
            system.node("p").vr = 1
            with pytest.raises(InvariantViolation):
                check_version_agreement(system)
        finally:
            system.coordinator.running = False

    def test_single_disagreement_during_advancement_allowed(self, system):
        system.coordinator.running = True
        try:
            system.node("p").vu = 2  # vr still agrees
            check_version_agreement(system)
        finally:
            system.coordinator.running = False


class TestMonitor:
    def test_monitor_raises_on_scheduled_corruption(self, system):
        monitor = InvariantMonitor(system, every=0.5)
        system.sim.schedule(2.0, setattr, system.node("p"), "vu", 99)
        with pytest.raises(InvariantViolation):
            system.run(until=5.0)
        monitor.stop()

    def test_monitor_counts_checks(self, system):
        monitor = InvariantMonitor(system, every=0.5)
        system.run(until=5.0)
        monitor.stop()
        assert monitor.checks_run == 10
