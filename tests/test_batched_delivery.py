"""Delivery batching equivalence: coalescing may not change anything
observable except the scheduled-event trace.

``Network._schedule_delivery`` sits *below* the fault injector's
``_transmit`` gauntlet and above the mailboxes, so with the same fault
seed a batched and an unbatched run must make identical per-copy
drop/spike/dup decisions, deliver identical message sequences at
identical times, and report identical ``NetworkStats`` counters — for
the bare injector and for the full chaos composition (reliable layer's
acks, retransmissions, and dedup included).
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.faults.network import ChaosNetwork, FaultyNetwork, build_network
from repro.net import constant_latency
from repro.net.network import Network
from repro.sim import Simulator
from repro.sim.distributions import RngRegistry

ENDPOINTS = ("a", "b", "c")


def drive(network, sim):
    """A scripted send pattern with plenty of same-tick convergence.

    Each round, every endpoint sends to every other endpoint at the same
    instant; under constant latency all copies toward one destination are
    due on the same tick — the case batching coalesces.
    """
    def round_of_sends(round_index):
        for src in ENDPOINTS:
            for dst in ENDPOINTS:
                if src != dst:
                    network.send(src, dst, "DATA",
                                 (round_index, src, dst))

    for round_index in range(40):
        sim.schedule(round_index * 0.5, round_of_sends, round_index)
    sim.run()


def delivered(network):
    """Drain every mailbox: ``{dst: [(src, payload, delivered_at)]}``."""
    log = {}
    for endpoint in ENDPOINTS:
        mailbox = network.mailbox(endpoint)
        items = []
        while True:
            message = mailbox.take_nowait()
            if message is None:
                break
            items.append((message.src, message.payload,
                          message.delivered_at))
        log[endpoint] = items
    return log


def run_network(make_network, batch):
    sim = Simulator()
    network = make_network(sim, batch)
    for endpoint in ENDPOINTS:
        network.register(endpoint)
    drive(network, sim)
    return network, delivered(network)


def stats_tuple(network):
    stats = network.stats
    return (stats.total_sent, stats.dropped, stats.duplicated,
            stats.retransmits, stats.dup_suppressed)


class TestFaultyNetworkEquivalence:
    @pytest.mark.parametrize("fault_seed", [0, 1, 2, 3, 4])
    def test_drop_dup_decisions_identical(self, fault_seed):
        """Same fault seed ⇒ same per-copy drop/dup draws, same stats,
        same deliveries — batched or not."""
        def make(sim, batch):
            plan = FaultPlan.storm(ENDPOINTS, drop_rate=0.3, dup_rate=0.25,
                                   fault_seed=fault_seed)
            return FaultyNetwork(sim, plan=plan,
                                 latency=constant_latency(1.0),
                                 rngs=RngRegistry(7),
                                 batch_delivery=batch)

        plain_net, plain_log = run_network(make, batch=False)
        batched_net, batched_log = run_network(make, batch=True)

        assert plain_log == batched_log
        assert stats_tuple(plain_net) == stats_tuple(batched_net)
        assert plain_net.stats.dropped > 0, "storm drew no drops"
        assert plain_net.stats.duplicated > 0, "storm drew no dups"
        # The unbatched run never opens a batch; the batched one must
        # actually coalesce the convergent same-tick copies.
        assert plain_net.stats.batches == 0
        assert plain_net.stats.batched_messages == 0
        assert batched_net.stats.batched_messages > 0

    def test_chaos_composition_identical(self):
        """ReliableNetwork acks/retransmits/dedup compose unchanged: the
        whole chaos stack is trace-equivalent under batching."""
        def make(sim, batch):
            plan = FaultPlan.storm(ENDPOINTS, drop_rate=0.2, dup_rate=0.15,
                                   fault_seed=11)
            network = build_network(sim, plan,
                                    latency=constant_latency(1.0),
                                    rngs=RngRegistry(7),
                                    batch_delivery=batch)
            assert isinstance(network, ChaosNetwork)
            return network

        plain_net, plain_log = run_network(make, batch=False)
        batched_net, batched_log = run_network(make, batch=True)

        assert plain_log == batched_log
        assert stats_tuple(plain_net) == stats_tuple(batched_net)
        assert plain_net.stats.retransmits > 0, "no retransmissions drawn"
        assert plain_net.stats.dup_suppressed > 0, "dedup never fired"
        assert batched_net.stats.batched_messages > 0


class TestPlainNetworkBatching:
    def test_same_tick_fanin_coalesces_to_one_event(self):
        sim = Simulator()
        network = Network(sim, latency=constant_latency(1.0),
                          batch_delivery=True)
        for endpoint in ENDPOINTS:
            network.register(endpoint)
        for src in ("a", "b"):
            network.send(src, "c", "DATA", src)
        sim.run()
        # Two same-tick copies toward "c" rode one scheduled callback
        # (the batch event, scheduled when the first copy transmitted).
        assert network.stats.batches == 1
        assert network.stats.batched_messages == 1
        assert sim.scheduled_count == 1
        log = delivered(network)
        assert [src for src, _, _ in log["c"]] == ["a", "b"]

    def test_same_tick_broadcast_coalesces_across_destinations(self):
        """Batches are keyed by delivery tick alone, so a broadcast's
        fan-out shares one event too — and still delivers in
        transmission order to each mailbox."""
        sim = Simulator()
        network = Network(sim, latency=constant_latency(1.0),
                          batch_delivery=True)
        for endpoint in ENDPOINTS:
            network.register(endpoint)
        network.broadcast("a", "DATA", "hello", include_self=False)
        sim.run()
        assert network.stats.batches == 1
        assert network.stats.batched_messages == 1
        assert sim.scheduled_count == 1
        log = delivered(network)
        assert [payload for _, payload, _ in log["b"]] == ["hello"]
        assert [payload for _, payload, _ in log["c"]] == ["hello"]

    def test_jittered_latency_keeps_order_and_content(self):
        """With distinct due times nothing coalesces, and batching is a
        pure pass-through."""
        from repro.net.latency import UniformLatency
        from repro.sim.distributions import Uniform

        def make(sim, batch):
            return Network(sim, rngs=RngRegistry(3),
                           latency=UniformLatency(Uniform(0.5, 1.5)),
                           batch_delivery=batch)

        plain_net, plain_log = run_network(make, batch=False)
        batched_net, batched_log = run_network(make, batch=True)
        assert plain_log == batched_log
        assert plain_net.stats.total_sent == batched_net.stats.total_sent
