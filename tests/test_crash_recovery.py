"""Crash-recovery: WAL replay, recovery hooks, and the chaos harness.

Crashes are fail-stop at message granularity: the mailbox freezes, and at
recovery the volatile store/counter state is discarded and rebuilt from
the write-ahead journal before the mailbox thaws.  These tests crash
nodes at the protocols' most delicate moments — mid-advancement for 3V,
mid-prepare for 2PC — and assert full convergence, plus the digest
identity that makes fault-free journaled runs indistinguishable from the
seed path.
"""

import pytest

from repro.analysis import audit
from repro.core import ThreeVSystem, check_all
from repro.errors import ProtocolError
from repro.faults import FaultPlan
from repro.exp import chaos_spec, run_chaos_spec
from repro.storage import Increment
from repro.txn import SubtxnSpec, TransactionSpec, WriteOp
from repro.workloads import PROTOCOLS, run_recording_experiment
from repro.workloads.runner import build_system


def two_node_txn(name, amount):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p", ops=[WriteOp("x", Increment(amount))],
            children=[SubtxnSpec(node="q",
                                 ops=[WriteOp("x", Increment(amount))])],
        ),
    )


class TestCrashSurface:
    def test_crash_requires_faults(self):
        system = ThreeVSystem(["p", "q"], seed=1)
        with pytest.raises(ProtocolError):
            system.crash("p")

    def test_double_crash_rejected(self):
        system = ThreeVSystem(["p", "q"], seed=1, faults=FaultPlan())
        system.crash("p")
        with pytest.raises(ProtocolError):
            system.crash("p")

    def test_recover_requires_down_node(self):
        system = ThreeVSystem(["p", "q"], seed=1, faults=FaultPlan())
        with pytest.raises(ProtocolError):
            system.recover("p")

    def test_crash_recover_cycle_bumps_counters(self):
        system = ThreeVSystem(["p", "q"], seed=1, faults=FaultPlan())
        system.crash("p")
        assert system.down_nodes == {"p"}
        system.recover("p")
        assert system.down_nodes == set()
        assert system.crash_count == 1
        assert system.recovery_count == 1
        assert system.node("p").journal.replays == 1


class TestCrashMidAdvancement:
    def test_3v_crash_during_advancement_converges(self):
        """Crash a participant while phase 1/2 of an advancement is in
        flight; after recovery the advancement completes and the stores
        agree."""
        system = ThreeVSystem(["p", "q"], seed=1, faults=FaultPlan(),
                              poll_interval=0.25)
        system.load("p", "x", 0)
        system.load("q", "x", 0)
        for i in range(6):
            system.submit_at(float(i), two_node_txn(f"t{i}", 1 << i))
        system.sim.schedule(6.5, system.advance_versions)
        # The advancement notice to q is at most ~1 time unit away; crash
        # q right in the middle of the protocol exchange.
        system.sim.schedule(7.0, system.crash, "q")
        system.sim.schedule(12.0, system.recover, "q")
        system.run(until=30.0)
        system.run_until_quiet(limit=1000.0)
        check_all(system)
        assert system.read_version >= 1
        expected = sum(1 << i for i in range(6))
        top = max(system.node("p").store.versions("x"))
        assert system.node("p").store.read_max_leq("x", top) == expected
        assert system.node("q").store.read_max_leq("x", top) == expected
        report = audit(system.history)
        assert report.clean

    def test_crash_discards_unjournaled_state(self):
        """A mutation that bypasses the journal does not survive — the
        replay really does rebuild from the log, not keep the object."""
        system = ThreeVSystem(["p"], seed=1, faults=FaultPlan())
        system.load("p", "x", 5)
        store = system.node("p").store
        store.raw.load("y", 99)  # behind the journal's back
        system.crash("p")
        system.recover("p")
        fresh = system.node("p").store
        assert fresh.read_max_leq("x", 0) == 5
        assert "y" not in fresh


class TestCrashMidPrepare:
    def test_2pc_crash_during_prepare_converges(self):
        """Crash the participant while PREPARE is on the wire: the vote
        waits in the frozen mailbox, the coordinator blocks in-doubt, and
        recovery lets the transaction finish."""
        system = build_system("2pc", ["p", "q"], seed=1,
                              faults=FaultPlan())
        system.load("p", "x", 0)
        system.load("q", "x", 0)
        system.submit_at(1.0, two_node_txn("t0", 7))
        # Root starts at p, subtxn + PREPARE reach q around t=2-4.
        system.sim.schedule(2.0, system.crash, "q")
        system.sim.schedule(10.0, system.recover, "q")
        system.run(until=30.0)
        system.run_until_quiet(limit=1000.0)
        record = system.history.txns["t0"]
        assert not record.aborted
        for node_id in ("p", "q"):
            store = system.node(node_id).store
            top = max(store.versions("x"))
            assert store.read_max_leq("x", top) == 7


class TestCrashRecoveryAcrossProtocols:
    @pytest.mark.parametrize("protocol", list(PROTOCOLS))
    def test_storm_with_crashes_converges(self, protocol):
        """Every registered protocol survives a small seeded storm (loss,
        duplication, one crash/recover cycle per node): it converges,
        replicas agree, the bitmask oracle matches, and strict-audit
        protocols stay clean."""
        spec = chaos_spec(protocol, nodes=3, duration=8.0, update_rate=4.0,
                          inquiry_rate=2.0, audit_rate=0.1)
        report = run_chaos_spec(spec, verify_repeat=False)
        assert report.ok, report.failures
        assert report.summary.crashes == 3
        assert report.summary.recoveries == 3
        assert report.summary.messages_dropped > 0

    def test_chaos_repeatability_and_seed_sensitivity(self):
        spec = chaos_spec("3v", nodes=3, duration=8.0)
        report = run_chaos_spec(spec, verify_repeat=True)
        assert report.ok, report.failures
        assert report.repeat_identical is True
        other = run_chaos_spec(spec.replace(fault_seed=spec.fault_seed + 1),
                               verify_repeat=False)
        assert other.ok, other.failures
        assert (other.summary.messages_dropped
                != report.summary.messages_dropped
                or other.summary.retransmits != report.summary.retransmits)


class TestDigestIdentity:
    def test_zero_fault_plan_is_event_identical_to_seed_path(self):
        """Journaling plus an all-zero plan must not perturb the
        simulation at all: same events, same transactions, same stores."""
        plain = run_recording_experiment("3v", nodes=3, duration=10.0,
                                         seed=3)
        journaled = run_recording_experiment("3v", nodes=3, duration=10.0,
                                             seed=3, faults=FaultPlan())
        assert (plain.system.sim.scheduled_count
                == journaled.system.sim.scheduled_count)
        assert plain.system.sim.now == journaled.system.sim.now
        assert set(plain.history.txns) == set(journaled.history.txns)
        for node_id, node in plain.system.nodes.items():
            other = journaled.system.node(node_id)
            assert node.store.snapshot() == other.store.raw.snapshot()
        # ... and the journal really was armed on the journaled run.
        assert journaled.system.journaling
        assert journaled.system.node("n00").journal.component(
            "store").journal_length > 0
