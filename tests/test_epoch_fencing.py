"""Advancement-epoch fencing: dead incarnations can never confuse live ones.

Every message an incarnation of the coordinator role sends carries its
epoch; nodes fence requests below their high-water mark and the
coordinator fences replies not stamped with its live epoch (both count
into ``NetworkStats.stale_epoch_dropped``).  The Hypothesis schedule
drives random interleavings of advancement, crash/recover cycles, and
takeovers, and checks the global invariants: epochs only move up, no wave
is ever applied twice, and the cluster converges to the coordinator's
versions.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ThreeVSystem
from repro.core.advancement import COORDINATOR_ID
from repro.errors import AdvancementInProgress, ProtocolError
from repro.net.message import MessageKind

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_system():
    system = ThreeVSystem(["p", "q", "r"], seed=3)
    for node_id in system.nodes:
        system.load(node_id, "k", 0)
    return system


def try_advance(system):
    try:
        system.advance_versions()
    except (AdvancementInProgress, ProtocolError):
        pass  # already running, or down: skipped beat


def try_crash(coordinator):
    if not coordinator.down:
        coordinator.crash()


_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["advance", "cycle", "takeover"]),
        st.floats(min_value=1.0, max_value=8.0),   # delay before the action
        st.floats(min_value=1.0, max_value=5.0),   # crash-to-restart gap
        st.sampled_from(["p", "q"]),               # takeover host
    ),
    min_size=1,
    max_size=5,
)


class TestEpochFencingProperties:
    @SLOW
    @given(actions=_ACTIONS)
    def test_random_failure_schedules_keep_the_invariants(self, actions):
        system = make_system()
        coordinator = system.coordinator
        epochs = []
        now = 1.0
        restarts = 0
        for action, delay, gap, host in actions:
            now += delay
            if action == "advance":
                system.sim.schedule(now, try_advance, system)
            elif action == "cycle":
                system.sim.schedule(now, try_crash, coordinator)
                system.sim.schedule(now + gap, coordinator.recover)
                restarts += 1
            else:
                system.sim.schedule(now, try_crash, coordinator)
                system.sim.schedule(now + gap, coordinator.failover, host)
                restarts += 1
            system.sim.schedule(
                now + 0.5, lambda: epochs.append(coordinator.epoch)
            )
        # Always end restarted so any journaled wave can finish.
        system.run_until_quiet(limit=10000.0)
        assert not coordinator.down
        assert not coordinator.running

        # Epochs are monotone and bumped exactly once per effective
        # restart (overlapping schedules de-duplicate: a crash aimed at
        # an already-down coordinator is skipped, a recovery of an
        # already-restarted one is a no-op).
        assert epochs == sorted(epochs)
        assert coordinator.epoch == (
            1 + coordinator.recoveries + coordinator.takeovers
        )
        assert coordinator.recoveries + coordinator.takeovers <= restarts

        # No double-apply: each completed wave moved vu exactly once, and
        # a resumed wave finishes rather than forking (vr trails by one).
        assert coordinator.vu == 1 + coordinator.completed_runs
        assert coordinator.vr == coordinator.vu - 1 or (
            coordinator.completed_runs == 0 and coordinator.vr == 0
        )

        # The cluster converged to the live incarnation's versions, and no
        # node ever saw an epoch beyond it.
        for node in system.nodes.values():
            assert node.vu == coordinator.vu
            assert node.vr == coordinator.vr
            assert node.coord_epoch <= coordinator.epoch
        assert system.network.stats.stale_epoch_dropped >= 0


class TestFencingCounts:
    def test_mid_wave_crash_fences_the_dead_waves_replies(self):
        """Replies already in flight to a crashed incarnation carry the
        old epoch; the resumed incarnation counts and drops every one."""
        system = make_system()
        coordinator = system.coordinator
        system.sim.schedule(1.0, system.advance_versions)
        system.sim.schedule(2.0, try_crash, coordinator)  # acks in flight
        system.sim.schedule(2.5, coordinator.recover)
        system.run_until_quiet()
        assert coordinator.completed_runs == 1
        assert system.network.stats.stale_epoch_dropped > 0

    def test_nodes_fence_stale_heartbeats(self):
        system = make_system()
        coordinator = system.coordinator
        system.sim.schedule(1.0, try_crash, coordinator)
        system.sim.schedule(2.0, coordinator.failover, "p")
        system.run_until_quiet()
        assert coordinator.epoch == 2
        # Teach q the live epoch, then replay a dead incarnation's
        # heartbeat at it: fenced, counted, high-water mark unmoved.
        system.network.send(
            coordinator.endpoint, "q", MessageKind.COORDINATOR_HEARTBEAT,
            (coordinator.epoch,),
        )
        system.run_until_quiet()
        assert system.nodes["q"].coord_epoch == 2
        before = system.network.stats.stale_epoch_dropped
        system.network.send(
            COORDINATOR_ID, "q", MessageKind.COORDINATOR_HEARTBEAT, (1,),
        )
        system.run_until_quiet()
        assert system.network.stats.stale_epoch_dropped == before + 1
        assert system.nodes["q"].coord_epoch == 2

    def test_newer_epoch_updates_the_high_water_mark(self):
        system = make_system()
        system.network.send(
            COORDINATOR_ID, "p", MessageKind.COORDINATOR_HEARTBEAT, (7,),
        )
        system.run_until_quiet()
        assert system.nodes["p"].coord_epoch == 7
        assert system.network.stats.stale_epoch_dropped == 0
