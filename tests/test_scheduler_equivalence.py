"""Differential tests: optimized Simulator vs the reference pure-heap kernel.

The optimized :class:`~repro.sim.simulator.Simulator` routes zero-delay
callbacks through a FIFO deque instead of the heap.  Its claim is *exact*
behavioural equivalence with the seed scheduler (now preserved as
:class:`~repro.sim.reference.ReferenceSimulator`): identical callback
execution order, identical clock readings at every callback, identical
final clocks.  These tests drive randomized schedule programs — mixed
zero/positive delays, re-entrant scheduling from inside callbacks, nested
generator processes — through both kernels and compare full execution logs.

When a compiled kernel build is present the whole differential suite runs
twice — once against the pure-Python ``Simulator`` (from the loader's
pre-swap snapshot) and once against the compiled twin — so the oracle
covers both builds regardless of what ``REPRO_ACCEL`` selected for the
ambient process.  Without a build the ``accel`` leg skips cleanly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro._accel import AccelUnavailableError, load_accel, pure_namespace
from repro.errors import SimulationError
from repro.sim import ReferenceSimulator, Simulator


def _sim_builds():
    builds = [pytest.param(pure_namespace("repro.sim.simulator")["Simulator"],
                           id="pure")]
    try:
        compiled = load_accel("repro.sim.simulator").Simulator
    except AccelUnavailableError:
        builds.append(pytest.param(None, id="accel", marks=pytest.mark.skip(
            reason="no compiled kernel build present")))
    else:
        builds.append(pytest.param(compiled, id="accel"))
    return builds


#: Both kernel builds of the optimized Simulator (accel skips when absent).
SIM_BUILDS = _sim_builds()

#: A small palette of delays keeps schedules collision-rich (many events at
#: the same instant, where ordering bugs live) while exercising both the
#: zero-delay FIFO and the timed heap.  Both kernels do identical float
#: arithmetic, so exact comparison is safe.
DELAYS = st.sampled_from([0.0, 0.0, 0.0, 0.001, 0.001, 0.25, 1.0])

#: A schedule tree: each node is (delay, children).  Fired callbacks
#: schedule their children relative to their own firing time.
TREES = st.recursive(
    st.tuples(DELAYS, st.just(())),
    lambda node: st.tuples(DELAYS, st.lists(node, max_size=4)),
    max_leaves=40,
)
PROGRAMS = st.lists(TREES, min_size=1, max_size=8)


def run_callback_program(sim_class, program):
    """Execute a schedule-tree program; return the execution log."""
    sim = sim_class()
    log = []

    def fire(label, now_children):
        log.append((label, sim.now))
        for i, (delay, grandchildren) in enumerate(now_children):
            sim.schedule(delay, fire, f"{label}.{i}", grandchildren)

    for i, (delay, children) in enumerate(program):
        sim.schedule(delay, fire, str(i), children)
    sim.run()
    return log, sim.now


@pytest.mark.parametrize("fast_class", SIM_BUILDS)
@given(program=PROGRAMS)
@settings(max_examples=60, deadline=None)
def test_callback_trees_equivalent(fast_class, program):
    fast_log, fast_now = run_callback_program(fast_class, program)
    ref_log, ref_now = run_callback_program(ReferenceSimulator, program)
    assert fast_log == ref_log
    assert fast_now == ref_now


@pytest.mark.parametrize("fast_class", SIM_BUILDS)
@given(program=PROGRAMS, until=st.sampled_from([0.0, 0.001, 0.5, 2.0]))
@settings(max_examples=40, deadline=None)
def test_bounded_run_equivalent(fast_class, program, until):
    """run(until=...) stops at the same point and clock on both kernels."""

    def run_bounded(sim_class):
        sim = sim_class()
        log = []

        def fire(label, children):
            log.append((label, sim.now))
            for i, (delay, grandchildren) in enumerate(children):
                sim.schedule(delay, fire, f"{label}.{i}", grandchildren)

        for i, (delay, children) in enumerate(program):
            sim.schedule(delay, fire, str(i), children)
        sim.run(until=until)
        return log, sim.now, sim.pending_count

    assert run_bounded(fast_class) == run_bounded(ReferenceSimulator)


#: Process scripts: a sequence of timeout delays per process; processes are
#: started either at t=0 or from a staggered parent.
PROCESS_SCRIPTS = st.lists(
    st.lists(DELAYS, min_size=1, max_size=6), min_size=1, max_size=6
)


def run_process_program(sim_class, scripts):
    sim = sim_class()
    log = []

    def worker(pid, delays):
        for step, delay in enumerate(delays):
            log.append(("step", pid, step, sim.now))
            yield sim.timeout(delay)
        log.append(("done", pid, sim.now))
        if delays and delays[0] == 0.0:
            # Re-entrant spawn: a process finishing at a FIFO instant
            # launches a nested child at the same instant.
            sim.process(worker(f"{pid}+", [0.001]), name=f"{pid}+")

    for pid, delays in enumerate(scripts):
        sim.process(worker(str(pid), delays), name=str(pid))
    sim.run()
    return log, sim.now


@pytest.mark.parametrize("fast_class", SIM_BUILDS)
@given(scripts=PROCESS_SCRIPTS)
@settings(max_examples=60, deadline=None)
def test_nested_processes_equivalent(fast_class, scripts):
    fast = run_process_program(fast_class, scripts)
    ref = run_process_program(ReferenceSimulator, scripts)
    assert fast == ref


@pytest.mark.parametrize("fast_class", SIM_BUILDS)
def test_pending_and_scheduled_counts_agree(fast_class):
    def load(sim_class):
        sim = sim_class()
        for delay in (0.0, 0.0, 1.0, 2.0):
            sim.schedule(delay, lambda: None)
        return sim

    fast, ref = load(fast_class), load(ReferenceSimulator)
    assert fast.pending_count == ref.pending_count == 4
    assert fast.scheduled_count == ref.scheduled_count == 4
    fast.step()
    ref.step()
    assert fast.pending_count == ref.pending_count == 3


@pytest.mark.parametrize("fast_class", SIM_BUILDS)
def test_negative_delay_rejected_by_both(fast_class):
    for sim_class in (fast_class, ReferenceSimulator):
        with pytest.raises(SimulationError):
            sim_class().schedule(-0.5, lambda: None)


class TestRunUntilTriggeredLimit:
    """Satellite fix: the non-trigger path advances the clock to the limit
    and reports how much work was still pending."""

    def test_clock_advances_to_limit_on_timeout(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(10.0, event.succeed)
        with pytest.raises(SimulationError) as excinfo:
            sim.run_until_triggered(event, limit=3.0)
        assert sim.now == 3.0
        assert "3.0" in str(excinfo.value)
        assert "1 callbacks pending" in str(excinfo.value)

    def test_triggered_before_limit_is_fine(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(1.0, event.succeed, "v")
        sim.run_until_triggered(event, limit=5.0)
        assert event.value == "v"
        assert sim.now == 1.0
