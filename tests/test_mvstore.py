"""Unit and property tests for the multi-version store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MissingItemError, MissingVersionError, StorageError
from repro.storage import Increment, MVStore


@pytest.fixture
def store():
    s = MVStore()
    s.load("A", 100, version=0)
    s.load("B", 200, version=0)
    return s


class TestReads:
    def test_read_max_leq_exact(self, store):
        assert store.read_max_leq("A", 0) == 100

    def test_read_max_leq_falls_back_to_older(self, store):
        assert store.read_max_leq("A", 5) == 100

    def test_read_max_leq_missing_raises(self, store):
        with pytest.raises(MissingItemError):
            store.read_max_leq("ghost", 3)

    def test_read_max_leq_default(self, store):
        assert store.read_max_leq("ghost", 3, default=None) is None

    def test_read_below_lowest_version_raises(self):
        store = MVStore()
        store.load("A", 1, version=5)
        with pytest.raises(MissingItemError):
            store.read_max_leq("A", 4)

    def test_get_exact(self, store):
        assert store.get_exact("A", 0) == 100
        with pytest.raises(MissingVersionError):
            store.get_exact("A", 1)

    def test_exists_and_exists_above(self, store):
        assert store.exists("A", 0)
        assert not store.exists("A", 1)
        assert not store.exists_above("A", 0)
        store.ensure_version("A", 2)
        assert store.exists_above("A", 0)
        assert store.exists_above("A", 1)
        assert not store.exists_above("A", 2)

    def test_contains_and_keys(self, store):
        assert "A" in store
        assert "ghost" not in store
        assert sorted(store.keys()) == ["A", "B"]


class TestCopyOnUpdate:
    def test_ensure_version_copies_from_base(self, store):
        created = store.ensure_version("A", 1)
        assert created
        assert store.get_exact("A", 1) == 100

    def test_ensure_version_idempotent(self, store):
        store.ensure_version("A", 1)
        store.apply_geq("A", 1, Increment(1))
        assert store.ensure_version("A", 1) is False
        assert store.get_exact("A", 1) == 101

    def test_new_item_starts_from_none(self):
        store = MVStore()
        store.ensure_version("new", 2)
        assert store.get_exact("new", 2) is None
        store.apply_geq("new", 2, Increment(5))
        assert store.get_exact("new", 2) == 5

    def test_copy_skips_newer_versions(self):
        """A version-1 creation must copy from version 0, not version 2."""
        store = MVStore()
        store.load("X", 10, version=0)
        store.ensure_version("X", 2)
        store.apply_geq("X", 2, Increment(100))
        store.ensure_version("X", 1)
        assert store.get_exact("X", 1) == 10

    def test_duplicate_load_raises(self, store):
        with pytest.raises(StorageError):
            store.load("A", 1, version=0)


class TestApplyGeq:
    def test_single_version_write(self, store):
        store.ensure_version("A", 1)
        written = store.apply_geq("A", 1, Increment(5))
        assert written == (1,)
        assert store.get_exact("A", 1) == 105
        assert store.get_exact("A", 0) == 100
        assert store.dual_writes == 0

    def test_dual_write_updates_both_versions(self, store):
        """Straggler at version 1 on a node already holding version 2."""
        store.ensure_version("A", 2)
        store.ensure_version("A", 1)
        written = store.apply_geq("A", 1, Increment(5))
        assert written == (1, 2)
        assert store.get_exact("A", 1) == 105
        assert store.get_exact("A", 2) == 105
        assert store.get_exact("A", 0) == 100
        assert store.dual_writes == 1

    def test_apply_geq_requires_exact_version(self, store):
        with pytest.raises(MissingVersionError):
            store.apply_geq("A", 1, Increment(5))

    def test_apply_exact_touches_one_version(self, store):
        store.ensure_version("A", 1)
        store.ensure_version("A", 2)
        store.apply_exact("A", 1, Increment(5))
        assert store.get_exact("A", 1) == 105
        assert store.get_exact("A", 2) == 100

    def test_dual_write_with_record_operation(self, store):
        """Dual writes apply to multiset observations too (the recording
        workload's log entries), not just numeric summaries."""
        from repro.storage import Record

        store.load("log", (), version=0)
        store.ensure_version("log", 2)
        store.apply_geq("log", 2, Record("late-era"))
        store.ensure_version("log", 1)
        written = store.apply_geq("log", 1, Record("straggler"))
        assert written == (1, 2)
        assert store.get_exact("log", 1) == ("straggler",)
        assert sorted(store.get_exact("log", 2)) == ["late-era", "straggler"]


class TestGarbageCollection:
    def test_collect_drops_old_versions(self, store):
        store.ensure_version("A", 1)
        store.apply_geq("A", 1, Increment(1))
        dropped = store.collect(1)
        assert dropped >= 1
        assert store.versions("A") == [1]
        assert store.get_exact("A", 1) == 101

    def test_collect_renames_when_new_read_version_missing(self, store):
        """Item B was never written in version 1: its version 0 copy is
        renamed to version 1 (Phase 4 rule)."""
        store.collect(1)
        assert store.versions("B") == [1]
        assert store.get_exact("B", 1) == 200

    def test_collect_keeps_newer_versions(self, store):
        store.ensure_version("A", 1)
        store.ensure_version("A", 2)
        store.collect(1)
        assert store.versions("A") == [1, 2]

    def test_collect_noop_when_nothing_older(self, store):
        assert store.collect(0) == 0


class TestStatistics:
    def test_max_live_versions_high_water_mark(self, store):
        assert store.max_live_versions == 1
        store.ensure_version("A", 1)
        store.ensure_version("A", 2)
        assert store.max_live_versions == 3
        store.collect(2)
        # High-water mark is sticky even after GC.
        assert store.max_live_versions == 3

    def test_live_version_histogram(self, store):
        store.ensure_version("A", 1)
        assert store.live_version_histogram() == {1: 1, 2: 1}

    def test_snapshot_is_detached(self, store):
        snap = store.snapshot()
        store.ensure_version("A", 1)
        store.apply_geq("A", 1, Increment(1))
        assert snap == {"A": {0: 100}, "B": {0: 200}}


class TestVersionLifecycleProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=-10, max_value=10)),
            max_size=30,
        )
    )
    def test_three_version_bound_under_protocol_usage(self, writes):
        """If writers only ever use versions {v, v+1, v+2} between GCs (as
        the 3V protocol guarantees), at most three versions are ever live."""
        store = MVStore()
        store.load("K", 0, version=0)
        base = 0
        for version_offset, delta in writes:
            if version_offset == 3:
                base += 1
                store.collect(base)
            else:
                v = base + version_offset
                store.ensure_version("K", v)
                store.apply_geq("K", v, Increment(delta))
            assert len(store.versions("K")) <= 3
        assert store.max_live_versions <= 3

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=20))
    def test_older_version_isolated_from_newer_writes(self, deltas):
        """Writes at version 1 never leak into the version-0 copy."""
        store = MVStore()
        store.load("K", 42, version=0)
        store.ensure_version("K", 1)
        for delta in deltas:
            store.apply_geq("K", 1, Increment(delta))
        assert store.get_exact("K", 0) == 42
        assert store.get_exact("K", 1) == 42 + sum(deltas)
