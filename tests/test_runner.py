"""Tests for the experiment runner (system factory + workload driver)."""

import pytest

from repro.baselines import ManualVersioningSystem, NoCoordSystem, TwoPCSystem
from repro.core import ThreeVSystem
from repro.errors import ReproError
from repro.workloads import build_system, run_recording_experiment

FAST = dict(nodes=3, duration=8.0, update_rate=3.0, inquiry_rate=2.0,
            audit_rate=0.0, entities=10, span=2, seed=5)


class TestBuildSystem:
    def test_protocol_dispatch(self):
        nodes = ["a", "b"]
        assert isinstance(build_system("3v", nodes), ThreeVSystem)
        assert isinstance(build_system("nocoord", nodes), NoCoordSystem)
        assert isinstance(build_system("2pc", nodes), TwoPCSystem)
        manual = build_system("manual", nodes)
        assert isinstance(manual, ManualVersioningSystem)
        assert not manual.synchronous
        sync = build_system("manual-sync", nodes)
        assert sync.synchronous

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ReproError):
            build_system("blockchain", ["a"])

    def test_nc3v_enabled_on_demand(self):
        system = build_system("3v", ["a", "b"], allow_noncommuting=True)
        assert system.config.enable_locking
        assert all(node.nc3v is not None for node in system.nodes.values())


class TestRunnerDeterminism:
    def test_same_workload_across_protocols(self):
        """Every protocol must receive the identical transaction stream
        for a given seed (paired comparison)."""
        a = run_recording_experiment("3v", **FAST)
        b = run_recording_experiment("nocoord", **FAST)
        assert a.submitted == b.submitted
        assert set(a.history.txns) == set(b.history.txns)
        submit_a = {n: r.submit_time for n, r in a.history.txns.items()}
        submit_b = {n: r.submit_time for n, r in b.history.txns.items()}
        assert submit_a == submit_b

    def test_span_clamped_to_node_count(self):
        result = run_recording_experiment(
            "3v", **dict(FAST, nodes=2, span=5)
        )
        assert all(
            len(nodes) == 2
            for nodes in result.workload.entity_nodes.values()
        )

    def test_result_exposes_history_and_network(self):
        result = run_recording_experiment("3v", **FAST)
        assert result.history is result.system.history
        assert result.network.stats.total_sent > 0
        assert result.protocol == "3v"
        assert result.duration == FAST["duration"]

    def test_abort_fraction_flows_through(self):
        result = run_recording_experiment(
            "3v", abort_fraction=0.5, **FAST
        )
        assert len(result.history.aborted_txns()) > 0

    def test_drain_limit_enforced(self):
        from repro.errors import ProtocolError
        from repro.net import constant_latency

        with pytest.raises(ProtocolError):
            run_recording_experiment(
                "3v", latency=constant_latency(10_000.0), drain_limit=50.0,
                **FAST,
            )
