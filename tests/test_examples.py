"""Keep the example scripts runnable: execute each one (scaled down)."""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFastExamplesAsSubprocess:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "paper_walkthrough.py", "federated_audit.py"],
    )
    def test_runs_cleanly(self, script):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()


class TestHeavierExamplesScaledDown:
    def test_hospital_billing(self, capsys):
        module = load_example("hospital_billing")
        module.SETTINGS.update(duration=15.0, update_rate=3.0,
                               inquiry_rate=2.0, entities=10)
        module.main()
        out = capsys.readouterr().out
        assert "3V (paper)" in out
        assert "global 2PL+2PC" in out

    def test_telecom_calls(self, capsys):
        module = load_example("telecom_calls")
        module.DURATION = 20.0
        module.CALL_RATE = 8.0
        module.CHECK_RATE = 2.0
        module.SWITCHES = 4
        module.main()
        out = capsys.readouterr().out
        assert "staleness" in out

    def test_noncommuting_inventory(self, capsys):
        module = load_example("noncommuting_inventory")
        module.DURATION = 20.0
        module.STORES = 4
        module.main()
        out = capsys.readouterr().out
        assert "stock takes" in out
