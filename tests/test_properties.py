"""Property-based tests: the 3V protocol under randomized adversity.

Hypothesis generates cluster sizes, latency regimes, transaction mixes,
abort placements, and advancement timings; every generated execution must
satisfy the paper's invariants (Section 4.4), Theorem 4.1 (snapshot
consistency, via the bitmask oracle), and Theorem 4.2 (zero remote waits).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import audit, max_remote_wait
from repro.core import InvariantMonitor, ThreeVSystem, check_all
from repro.net import UniformLatency
from repro.sim import RngRegistry, Uniform
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def cluster_params(draw):
    nodes = draw(st.integers(min_value=2, max_value=6))
    return {
        "nodes": nodes,
        "span": draw(st.integers(min_value=1, max_value=nodes)),
        "entities": draw(st.integers(min_value=2, max_value=10)),
        "seed": draw(st.integers(min_value=0, max_value=10_000)),
        "latency_low": draw(st.floats(min_value=0.05, max_value=1.0)),
        "latency_spread": draw(st.floats(min_value=0.0, max_value=4.0)),
        "update_rate": draw(st.floats(min_value=0.5, max_value=8.0)),
        "inquiry_rate": draw(st.floats(min_value=0.5, max_value=4.0)),
        "advancements": draw(st.integers(min_value=0, max_value=3)),
        "abort_fraction": draw(st.sampled_from([0.0, 0.0, 0.15])),
    }


def run_randomized(params, duration=15.0, completion="hierarchical"):
    from repro.core import NodeConfig

    node_ids = [f"n{i}" for i in range(params["nodes"])]
    latency = UniformLatency(
        Uniform(params["latency_low"],
                params["latency_low"] + params["latency_spread"])
    )
    system = ThreeVSystem(node_ids, seed=params["seed"], latency=latency,
                          poll_interval=0.5,
                          node_config=NodeConfig(completion=completion))
    config = RecordingConfig(
        nodes=node_ids,
        entities=params["entities"],
        span=params["span"],
        amount_mode="bitmask",
        abort_fraction=params["abort_fraction"],
    )
    workload = RecordingWorkload(config, RngRegistry(params["seed"] + 1))
    workload.install(system)
    arrivals = RngRegistry(params["seed"] + 2)
    drive(system,
          poisson_arrivals(arrivals, "a.upd", params["update_rate"], duration),
          workload.make_recording)
    drive(system,
          poisson_arrivals(arrivals, "a.inq", params["inquiry_rate"], duration),
          workload.make_inquiry)
    # Advancements at random times inside the run.
    for k in range(params["advancements"]):
        at = duration * (k + 1) / (params["advancements"] + 1)
        system.sim.schedule(at, _try_advance, system)
    monitor = InvariantMonitor(system, every=0.5)
    system.run(until=duration)
    monitor.stop()
    system.run_until_quiet(limit=duration + 10_000)
    return system, workload


def _try_advance(system):
    from repro.errors import AdvancementInProgress

    try:
        system.advance_versions()
    except AdvancementInProgress:
        pass


class TestRandomized3V:
    @SLOW
    @given(cluster_params())
    def test_snapshot_consistency_and_invariants(self, params):
        system, workload = run_randomized(params)
        check_all(system)
        report = audit(system.history, workload, check_snapshots=True)
        assert report.clean, report.violations[:3]

    @SLOW
    @given(cluster_params())
    def test_theorem_4_2_zero_remote_waits(self, params):
        system, _workload = run_randomized(params)
        assert max_remote_wait(system.history) == 0.0

    @SLOW
    @given(cluster_params())
    def test_three_version_bound(self, params):
        system, _workload = run_randomized(params)
        for node in system.nodes.values():
            assert node.store.max_live_versions <= 3

    @SLOW
    @given(cluster_params())
    def test_immediate_completion_also_serializable(self, params):
        """The literal Section 4.1 semantics with the sound two-wave
        detector: still snapshot-consistent under randomized adversity."""
        system, workload = run_randomized(params, completion="immediate")
        report = audit(system.history, workload, check_snapshots=True)
        assert report.clean, report.violations[:3]
        assert max_remote_wait(system.history) == 0.0

    @SLOW
    @given(cluster_params())
    def test_counters_always_converge(self, params):
        """After draining, one more advancement always completes: the
        termination detector never hangs (liveness)."""
        system, _workload = run_randomized(params)
        before = system.read_version
        system.advance_versions()
        system.run_until_quiet(limit=10_000_000)
        assert system.read_version == before + 1


@st.composite
def txn_trees(draw, nodes):
    """A random transaction tree over the given nodes (depth <= 3)."""

    def subtree(depth, path):
        node = draw(st.sampled_from(nodes))
        n_ops = draw(st.integers(min_value=0, max_value=3))
        ops = []
        for k in range(n_ops):
            key = f"k{draw(st.integers(min_value=0, max_value=4))}"
            if draw(st.booleans()):
                ops.append(WriteOp(key, Increment(draw(
                    st.integers(min_value=-5, max_value=5)))))
            else:
                ops.append(ReadOp(key))
        children = []
        if depth < 3:
            for c in range(draw(st.integers(min_value=0, max_value=2))):
                children.append(subtree(depth + 1, f"{path}.{c}"))
        return SubtxnSpec(node=node, ops=ops, children=children)

    return subtree(1, "r")


class TestRandomTrees:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_arbitrary_trees_execute_and_converge(self, data):
        """Any well-formed tree (multi-visit, empty subtxns, deep chains)
        runs to global completion and the next advancement terminates."""
        node_ids = ["a", "b", "c"]
        system = ThreeVSystem(node_ids, seed=data.draw(
            st.integers(min_value=0, max_value=999)))
        for nid in node_ids:
            for k in range(5):
                system.load(nid, f"k{k}", 0)
        trees = data.draw(st.lists(txn_trees(node_ids), min_size=1,
                                   max_size=5))
        has_write = False
        for i, tree in enumerate(trees):
            spec = TransactionSpec(name=f"t{i}", root=tree)
            has_write = has_write or not spec.is_read_only
            system.submit(spec)
        system.run_until_quiet()
        for i in range(len(trees)):
            record = system.history.txn(f"t{i}")
            assert record.global_complete_time is not None
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1
        check_all(system)
