"""The advancement coordinator as a crashable, fail-over-able role.

The paper assumes "some distributed mutual exclusion mechanism" keeps
advancement single-threaded; these tests exercise the implemented scheme:
the role's control record is write-ahead journaled, every incarnation
stamps its messages with a monotone epoch, a crashed incarnation can
recover in place or be taken over by the lowest-id live node's standby
monitor, and a resumed wave replays idempotently from the journal.
"""

import pytest

from repro.core import ThreeVSystem
from repro.core.advancement import COORDINATOR_ID
from repro.core.policy import PeriodicPolicy
from repro.errors import ProtocolError
from repro.faults import CrashEvent, FaultPlan


def make_system(**kwargs):
    system = ThreeVSystem(["p", "q"], seed=1, **kwargs)
    system.load("p", "x", 0)
    system.load("q", "y", 0)
    return system


class TestCrashRecover:
    def test_crash_mid_wave_then_recover_completes_the_wave(self):
        system = make_system()
        coordinator = system.coordinator
        system.sim.schedule(1.0, system.advance_versions)
        # Crash strictly inside the wave (phase 1 acks take ~2 time units
        # at constant latency 1.0), recover shortly after.
        system.sim.schedule(2.0, coordinator.crash)
        system.sim.schedule(5.0, coordinator.recover)
        system.run_until_quiet()
        assert coordinator.crashes == 1
        assert coordinator.recoveries == 1
        assert coordinator.epoch == 2
        # The resumed wave completed: versions moved exactly one step.
        assert (coordinator.vu, coordinator.vr) == (2, 1)
        assert coordinator.completed_runs == 1
        assert not coordinator.running

    def test_advance_while_down_raises(self):
        system = make_system()
        system.coordinator.crash()
        with pytest.raises(ProtocolError, match="down"):
            system.advance_versions()
        with pytest.raises(ProtocolError, match="already down"):
            system.coordinator.crash()

    def test_repeated_cycles_keep_epoch_monotone(self):
        system = make_system()
        coordinator = system.coordinator
        seen = [coordinator.epoch]
        for start in (1.0, 20.0, 40.0):
            system.sim.schedule(start, system.advance_versions)
            system.sim.schedule(start + 1.5, coordinator.crash)
            system.sim.schedule(start + 4.0, coordinator.recover)
        system.run_until_quiet()
        seen.append(coordinator.epoch)
        assert coordinator.epoch == 4  # one bump per recovery
        assert coordinator.completed_runs == 3
        assert (coordinator.vu, coordinator.vr) == (4, 3)
        assert seen == sorted(seen)

    def test_crash_between_waves_resumes_nothing(self):
        system = make_system()
        coordinator = system.coordinator
        system.sim.schedule(1.0, system.advance_versions)
        system.run_until_quiet()
        assert coordinator.completed_runs == 1
        coordinator.crash()
        coordinator.recover()
        system.run_until_quiet()
        # No in-flight wave in the journal: nothing restarted.
        assert coordinator.completed_runs == 1
        assert not coordinator.running
        assert coordinator.epoch == 2


class TestWedgeRegression:
    def test_killed_wave_resets_running(self):
        """Regression: a killed advancement process must not leave the
        ``running`` flag wedged (every later ``advance()`` would raise
        AdvancementInProgress forever)."""
        system = make_system()
        wave = system.advance_versions()
        system.sim.run(until=1.0)
        assert system.coordinator.running
        wave.kill()
        system.run_until_quiet()
        assert not system.coordinator.running
        # The journaled wave is still in flight; a recovery cycle fences
        # the dead wave's stragglers (epoch bump) and resumes it.
        system.coordinator.crash()
        system.coordinator.recover()
        assert system.coordinator.running
        system.run_until_quiet()
        assert system.coordinator.vr == 1
        assert system.coordinator.completed_runs == 1

    def test_stop_policy_actually_stops_the_driver(self):
        """Regression: killing the policy driver while it waits on a wave
        must terminate it — a driver that absorbs its own kill keeps
        advancing versions forever and the system never drains."""
        system = make_system(policy=PeriodicPolicy(3.0))
        system.sim.run(until=40.0)
        system.stop_policy()
        system.run_until_quiet(limit=500.0)
        runs = system.coordinator.completed_runs
        assert runs >= 2
        system.sim.run(until=1000.0)
        assert system.coordinator.completed_runs == runs

    def test_policy_survives_coordinator_crash_cycles(self):
        system = make_system(policy=PeriodicPolicy(4.0))
        coordinator = system.coordinator
        system.sim.schedule(5.0, coordinator.crash)
        system.sim.schedule(8.0, coordinator.recover)
        system.sim.run(until=40.0)
        system.stop_policy()
        system.run_until_quiet(limit=500.0)
        # The beat during the outage was skipped, not fatal: waves kept
        # completing after recovery.
        assert coordinator.completed_runs >= 2
        assert coordinator.vr == coordinator.completed_runs


class TestScheduledCoordinatorCrash:
    def test_fault_plan_targets_the_coordinator(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node=COORDINATOR_ID, at=5.0, down_for=3.0),
        ))
        system = make_system(policy=PeriodicPolicy(4.0), faults=plan)
        system.sim.run(until=25.0)
        system.stop_policy()
        system.run_until_quiet(limit=500.0)
        coordinator = system.coordinator
        assert coordinator.crashes == 1
        assert coordinator.recoveries == 1
        assert coordinator.epoch == 2
        assert coordinator.completed_runs >= 2
        assert coordinator.vr == coordinator.completed_runs

    def test_scheduled_crash_skips_an_already_down_coordinator(self):
        plan = FaultPlan(crashes=(
            CrashEvent(node=COORDINATOR_ID, at=2.0, down_for=2.0),
            CrashEvent(node=COORDINATOR_ID, at=3.0, down_for=2.0),
        ))
        system = make_system(faults=plan)
        system.run_until_quiet()
        assert system.coordinator.crashes == 1


class TestLeaseFailover:
    def test_lowest_id_live_node_takes_over(self):
        system = make_system(lease_interval=2.0)
        coordinator = system.coordinator
        system.sim.schedule(5.0, coordinator.crash)
        system.sim.run(until=30.0)
        assert coordinator.takeovers == 1
        assert coordinator.host == "p"  # lowest id wins deterministically
        assert coordinator.endpoint == f"{COORDINATOR_ID}@p"
        assert not coordinator.down
        assert coordinator.epoch == 2
        # A late scheduled recovery of the superseded incarnation is a
        # no-op: the takeover already owns the role.
        coordinator.recover()
        assert coordinator.takeovers == 1
        assert coordinator.recoveries == 0
        assert coordinator.host == "p"
        # The new incarnation advances versions like the old one did.
        system.advance_versions()
        system.sim.run(until=60.0)
        assert coordinator.vr == 1
        system.stop_policy()
        system.run_until_quiet(limit=500.0)

    def test_takeover_skips_down_nodes(self):
        system = make_system(lease_interval=2.0, faults=FaultPlan())
        coordinator = system.coordinator
        system.crash("p")
        system.sim.schedule(5.0, coordinator.crash)
        system.sim.run(until=40.0)
        assert coordinator.takeovers == 1
        assert coordinator.host == "q"  # p is down, next-lowest wins
        system.stop_policy()

    def test_crashing_the_host_node_crashes_the_takeover(self):
        system = make_system(lease_interval=2.0, faults=FaultPlan())
        coordinator = system.coordinator
        system.sim.schedule(5.0, coordinator.crash)
        system.sim.run(until=30.0)
        assert coordinator.host == "p"
        system.crash("p")
        assert coordinator.down
        assert coordinator.crashes == 2
        # The surviving node's standby takes the role in turn.
        system.sim.run(until=60.0)
        assert coordinator.takeovers == 2
        assert coordinator.host == "q"
        assert coordinator.epoch == 3
        system.stop_policy()

    def test_zero_lease_interval_spawns_no_machinery(self):
        quiet = make_system()
        leased = make_system(lease_interval=2.0)
        assert quiet.coordinator._heartbeat_process is None
        assert not quiet._monitor_processes
        assert leased.coordinator._heartbeat_process is not None
        assert len(leased._monitor_processes) == 2
        with pytest.raises(ProtocolError):
            make_system(lease_interval=-1.0)


class TestChaosHarnessAxes:
    def test_3v_chaos_with_control_plane_axes(self):
        from repro.exp import chaos_spec, run_chaos_spec

        spec = chaos_spec("3v", duration=10.0, partition_count=1,
                          coordinator_crashes=1)
        report = run_chaos_spec(spec, verify_repeat=False)
        assert report.ok, report.failures
        summary = report.summary
        assert summary.coordinator_crashes == 1
        assert summary.coordinator_recoveries == 1
        assert summary.coordinator_epoch >= 2
        assert summary.partitions_cut > 0

    def test_manual_disagreement_is_a_finding_not_a_failure(self):
        """Under partitions the manual baseline may lose a straggler's
        write (the paper's documented failure mode): the chaos harness
        reports the disagreement but does not fail the run."""
        from repro.exp import chaos_spec, run_chaos_spec
        from repro.exp.chaos import _expects_convergence
        from repro.runtime.registry import PROTOCOLS

        assert not PROTOCOLS["manual"].detects_termination
        assert PROTOCOLS["3v"].detects_termination
        cut = chaos_spec("manual", duration=10.0, partition_count=1)
        calm = chaos_spec("manual", duration=10.0)
        assert not _expects_convergence(cut, PROTOCOLS["manual"])
        assert _expects_convergence(calm, PROTOCOLS["manual"])
        assert _expects_convergence(cut, PROTOCOLS["3v"])
        report = run_chaos_spec(cut, verify_repeat=False)
        assert report.ok, report.failures
