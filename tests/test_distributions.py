"""Unit tests for RNG streams and distributions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import (
    Constant,
    Exponential,
    LogNormal,
    RngRegistry,
    Uniform,
)


class TestConstant:
    def test_sample_and_mean(self):
        d = Constant(2.5)
        assert d.sample(RngRegistry(0).stream("x")) == 2.5
        assert d.mean() == 2.5

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Constant(-1.0)

    def test_repr(self):
        assert "2.5" in repr(Constant(2.5))


class TestUniform:
    def test_bounds_respected(self):
        d = Uniform(1.0, 3.0)
        rng = RngRegistry(0).stream("x")
        samples = [d.sample(rng) for _ in range(500)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert d.mean() == 2.0

    def test_reversed_bounds_rejected(self):
        with pytest.raises(SimulationError):
            Uniform(3.0, 1.0)

    def test_negative_low_rejected(self):
        with pytest.raises(SimulationError):
            Uniform(-1.0, 1.0)


class TestExponential:
    def test_mean_approximately_respected(self):
        d = Exponential(2.0)
        rng = RngRegistry(0).stream("x")
        samples = [d.sample(rng) for _ in range(5000)]
        assert 1.8 < sum(samples) / len(samples) < 2.2
        assert d.mean() == 2.0

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(SimulationError):
            Exponential(0.0)


class TestLogNormal:
    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.1, max_value=2.0))
    def test_empirical_mean_matches_parameter(self, mean, sigma):
        d = LogNormal(mean, sigma)
        rng = RngRegistry(0).stream("x")
        samples = [d.sample(rng) for _ in range(4000)]
        empirical = sum(samples) / len(samples)
        # Heavy-tailed: allow a generous band.
        assert 0.5 * mean < empirical < 2.0 * mean

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            LogNormal(0.0)
        with pytest.raises(SimulationError):
            LogNormal(1.0, sigma=0.0)


class TestRngRegistry:
    def test_streams_are_stable_per_name(self):
        a = RngRegistry(7).stream("alpha").random()
        b = RngRegistry(7).stream("alpha").random()
        assert a == b

    def test_streams_differ_by_name(self):
        rngs = RngRegistry(7)
        assert rngs.stream("alpha").random() != rngs.stream("beta").random()

    def test_streams_differ_by_seed(self):
        assert (
            RngRegistry(1).stream("x").random()
            != RngRegistry(2).stream("x").random()
        )

    def test_stream_creation_order_irrelevant(self):
        """Adding a new stream must not perturb existing ones."""
        first = RngRegistry(9)
        _ = first.stream("a").random()
        value_b_after_a = first.stream("b").random()
        second = RngRegistry(9)
        value_b_alone = second.stream("b").random()
        assert value_b_after_a == value_b_alone

    def test_sample_helper(self):
        rngs = RngRegistry(0)
        assert rngs.sample("s", Constant(4.0)) == 4.0

    def test_same_stream_object_returned(self):
        rngs = RngRegistry(0)
        assert rngs.stream("x") is rngs.stream("x")
