"""Unit tests for the simulated network layer."""

import pytest

from repro.errors import SimulationError
from repro.net import (
    LocalRemoteLatency,
    MessageKind,
    Network,
    PartitionedLatency,
    SkewedLatency,
    UniformLatency,
    constant_latency,
)
from repro.sim import Constant, Exponential, RngRegistry, Simulator, Uniform


@pytest.fixture
def sim():
    return Simulator()


def make_network(sim, **kwargs):
    network = Network(sim, rngs=RngRegistry(7), **kwargs)
    for node in ("p", "q", "s"):
        network.register(node)
    return network


class TestDelivery:
    def test_message_arrives_after_latency(self, sim):
        network = make_network(sim, latency=constant_latency(2.5))
        network.send("p", "q", MessageKind.SUBTXN_REQUEST, payload={"x": 1})
        received = []

        def receiver():
            message = yield network.mailbox("q").get()
            received.append((sim.now, message))

        sim.process(receiver())
        sim.run()
        assert len(received) == 1
        time, message = received[0]
        assert time == 2.5
        assert message.payload == {"x": 1}
        assert message.latency == 2.5

    def test_send_to_unknown_endpoint_raises(self, sim):
        network = make_network(sim)
        with pytest.raises(SimulationError):
            network.send("p", "nowhere", MessageKind.SUBTXN_REQUEST)

    def test_mailbox_of_unknown_endpoint_raises(self, sim):
        network = make_network(sim)
        with pytest.raises(SimulationError):
            network.mailbox("nowhere")

    def test_latency_before_delivery_raises(self, sim):
        network = make_network(sim)
        message = network.send("p", "q", MessageKind.SUBTXN_REQUEST)
        with pytest.raises(ValueError):
            _ = message.latency

    def test_broadcast_reaches_everyone(self, sim):
        network = make_network(sim)
        messages = network.broadcast("p", MessageKind.START_ADVANCEMENT, payload=2)
        assert sorted(m.dst for m in messages) == ["p", "q", "s"]
        sim.run()
        for node in ("p", "q", "s"):
            assert len(network.mailbox(node)) == 1

    def test_broadcast_excluding_self(self, sim):
        network = make_network(sim)
        messages = network.broadcast(
            "p", MessageKind.START_ADVANCEMENT, include_self=False
        )
        assert sorted(m.dst for m in messages) == ["q", "s"]

    def test_variable_latency_reorders_messages(self, sim):
        """Non-FIFO delivery: a later send can overtake an earlier one."""
        network = make_network(sim, latency=UniformLatency(Uniform(0.1, 10.0)))
        order = []

        def receiver():
            for _ in range(40):
                message = yield network.mailbox("q").get()
                order.append(message.payload)

        sim.process(receiver())
        for i in range(40):
            sim.schedule(i * 0.01, network.send, "p", "q",
                         MessageKind.SUBTXN_REQUEST, i)
        sim.run()
        assert sorted(order) == list(range(40))
        assert order != list(range(40)), "expected at least one overtake"

    def test_fifo_links_preserve_order(self, sim):
        network = Network(
            sim,
            rngs=RngRegistry(7),
            latency=UniformLatency(Uniform(0.1, 10.0)),
            fifo_links=True,
        )
        network.register("p")
        network.register("q")
        order = []

        def receiver():
            for _ in range(40):
                message = yield network.mailbox("q").get()
                order.append(message.payload)

        sim.process(receiver())
        for i in range(40):
            sim.schedule(i * 0.01, network.send, "p", "q",
                         MessageKind.SUBTXN_REQUEST, i)
        sim.run()
        assert order == list(range(40))


class TestLatencyModels:
    def test_local_remote_split(self, sim):
        rngs = RngRegistry(1)
        model = LocalRemoteLatency(local=Constant(0.1), remote=Constant(5.0))
        assert model.delay("p", "p", rngs) == 0.1
        assert model.delay("p", "q", rngs) == 5.0

    def test_skewed_slow_links(self, sim):
        rngs = RngRegistry(1)
        model = SkewedLatency(
            fast=Constant(1.0), slow=Constant(50.0), slow_links=[("p", "s")]
        )
        assert model.delay("p", "q", rngs) == 1.0
        assert model.delay("p", "s", rngs) == 50.0
        assert model.delay("s", "p", rngs) == 1.0

    def test_partition_holds_messages_during_window(self, sim):
        rngs = RngRegistry(1)
        model = PartitionedLatency(
            base=constant_latency(1.0),
            stalled_links=[("p", "q")],
            start=0.0,
            end=100.0,
        )
        model.bind_clock(lambda: sim.now)
        assert model.delay("p", "q", rngs) == pytest.approx(101.0)
        assert model.delay("q", "p", rngs) == pytest.approx(1.0)

    def test_partition_over(self, sim):
        rngs = RngRegistry(1)
        model = PartitionedLatency(
            base=constant_latency(1.0),
            stalled_links=[("p", "q")],
            start=0.0,
            end=100.0,
        )
        model.bind_clock(lambda: 200.0)
        assert model.delay("p", "q", rngs) == pytest.approx(1.0)

    def test_partition_reversed_window_rejected(self, sim):
        with pytest.raises(SimulationError):
            PartitionedLatency(
                base=constant_latency(1.0),
                stalled_links=[],
                start=5.0,
                end=1.0,
            )

    def test_partition_now_kwarg_removed(self, sim):
        # The PR-4 deprecation shim is gone: the clock arrives only via
        # bind_clock (which the owning Network calls on construction).
        with pytest.raises(TypeError):
            PartitionedLatency(
                base=constant_latency(1.0),
                stalled_links=[("p", "q")],
                start=0.0,
                end=100.0,
                now=lambda: 200.0,
            )

    def test_rebinding_clock_wins(self, sim):
        rngs = RngRegistry(1)
        model = PartitionedLatency(
            base=constant_latency(1.0),
            stalled_links=[("p", "q")],
            start=0.0,
            end=100.0,
        )
        model.bind_clock(lambda: 0.0)
        model.bind_clock(lambda: 200.0)
        assert model.delay("p", "q", rngs) == pytest.approx(1.0)

    def test_partition_without_clock_raises(self, sim):
        rngs = RngRegistry(1)
        model = PartitionedLatency(
            base=constant_latency(1.0),
            stalled_links=[("p", "q")],
            start=0.0,
            end=100.0,
        )
        with pytest.raises(SimulationError):
            model.delay("p", "q", rngs)

    def test_network_binds_clock_to_latency_model(self):
        from repro.net import Network

        sim = Simulator()
        model = PartitionedLatency(
            base=constant_latency(1.0),
            stalled_links=[("p", "q")],
            start=0.0,
            end=100.0,
        )
        network = Network(sim, rngs=RngRegistry(1), latency=model)
        network.register("p")
        network.register("q")
        network.send("p", "q", MessageKind.SUBTXN_REQUEST)
        # Stalled window: the message is held until the partition heals.
        assert sim.peek_time() == pytest.approx(101.0)

    def test_exponential_latency_is_positive(self, sim):
        rngs = RngRegistry(3)
        model = UniformLatency(Exponential(2.0))
        samples = [model.delay("p", "q", rngs) for _ in range(200)]
        assert all(s >= 0 for s in samples)
        assert 1.0 < sum(samples) / len(samples) < 3.5


class TestStats:
    def test_traffic_accounting_by_category(self, sim):
        network = make_network(sim)
        network.send("p", "q", MessageKind.SUBTXN_REQUEST)
        network.send("p", "q", MessageKind.SUBTXN_REQUEST)
        network.send("p", "q", MessageKind.COMPLETION_NOTICE)
        network.send("p", "q", MessageKind.START_ADVANCEMENT)
        network.send("p", "q", MessageKind.PREPARE)
        sim.run()
        assert network.stats.total_sent == 5
        assert network.stats.user_messages == 3
        assert network.stats.control_messages == 1
        assert network.stats.commit_messages == 1

    def test_reproducible_latencies_from_seed(self):
        def run_once():
            sim = Simulator()
            network = Network(
                sim, rngs=RngRegistry(42),
                latency=UniformLatency(Uniform(0.0, 1.0)),
            )
            network.register("a")
            network.register("b")
            deliveries = []

            def receiver():
                for _ in range(10):
                    message = yield network.mailbox("b").get()
                    deliveries.append(sim.now)

            sim.process(receiver())
            for _ in range(10):
                network.send("a", "b", MessageKind.SUBTXN_REQUEST)
            sim.run()
            return deliveries

        assert run_once() == run_once()
