"""Docstring examples and small remaining coverage gaps."""

import doctest

import pytest

import repro.sim.simulator
from repro.net import LinkLatency, MessageKind, Network
from repro.sim import Constant, RngRegistry, Simulator


class TestDoctests:
    def test_simulator_docstring_example(self):
        results = doctest.testmod(repro.sim.simulator, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


class TestLatencyFallthrough:
    def test_link_latency_default(self):
        model = LinkLatency(links={("a", "b"): Constant(9.0)})
        rngs = RngRegistry(0)
        assert model.delay("a", "b", rngs) == 9.0
        assert model.delay("b", "a", rngs) == 1.0  # built-in default

    def test_link_latency_custom_default(self):
        model = LinkLatency(links={}, default=Constant(3.0))
        assert model.delay("x", "y", RngRegistry(0)) == 3.0


class TestNetworkStatsDetails:
    def test_latency_totals_by_kind(self):
        sim = Simulator()
        network = Network(sim, rngs=RngRegistry(0))
        network.register("a")
        network.register("b")
        network.send("a", "b", MessageKind.SUBTXN_REQUEST)
        network.send("a", "b", MessageKind.SUBTXN_REQUEST)
        sim.run()
        stats = network.stats
        assert stats.sent_by_kind[MessageKind.SUBTXN_REQUEST] == 2
        assert stats.total_latency_by_kind[
            MessageKind.SUBTXN_REQUEST
        ] == pytest.approx(2.0)

    def test_negative_latency_model_rejected(self):
        from repro.errors import SimulationError
        from repro.net.latency import LatencyModel

        class Broken(LatencyModel):
            def delay(self, src, dst, rngs):
                return -1.0

        sim = Simulator()
        network = Network(sim, rngs=RngRegistry(0), latency=Broken())
        network.register("a")
        network.register("b")
        with pytest.raises(SimulationError):
            network.send("a", "b", MessageKind.SUBTXN_REQUEST)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.net
        import repro.sim
        import repro.storage
        import repro.txn
        import repro.workloads

        for module in (repro.analysis, repro.baselines, repro.core,
                       repro.net, repro.sim, repro.storage, repro.txn,
                       repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
