"""Fault injection: degraded links, stalls, and pathological timing.

The paper assumes reliable (if arbitrarily slow) message delivery and no
permanent failures.  Within that model, the interesting adversity is
*extreme asynchrony*: links that stall for long windows, coordinators cut
off from nodes, and compensation racing its own transaction.  The 3V
property under all of it: user transactions on healthy nodes never feel
any of it, and the protocol state converges once messages flow again.
"""

import pytest

from repro.analysis import audit, max_remote_wait
from repro.core import ThreeVSystem, check_all
from repro.net import LinkLatency, PartitionedLatency, constant_latency
from repro.sim import Constant, RngRegistry
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals


def local_txn(name, node, key, delta=1):
    return TransactionSpec(
        name=name, root=SubtxnSpec(node=node, ops=[WriteOp(key, Increment(delta))])
    )


class TestStalledCoordinatorLinks:
    def make_system(self, stalled, start, end):
        # The network binds the simulation clock to the model at
        # construction time; no manual clock plumbing needed.
        latency = PartitionedLatency(
            base=constant_latency(1.0), stalled_links=stalled,
            start=start, end=end,
        )
        system = ThreeVSystem(["p", "q"], seed=1, latency=latency)
        system.load("p", "x", 0)
        system.load("q", "y", 0)
        return system

    def test_advancement_stalls_but_user_txns_do_not(self):
        """Coordinator -> q is down for 50 time units: the advancement
        cannot finish phase 1, yet transactions at p and q run at full
        speed the whole time."""
        system = self.make_system(
            stalled=[("coordinator", "q")], start=0.0, end=50.0
        )
        system.sim.schedule(5.0, system.advance_versions)
        for k in range(20):
            system.submit_at(6.0 + k, local_txn(f"u{k}", "p", "x"))
            system.submit_at(6.5 + k, local_txn(f"v{k}", "q", "y"))
        system.run_until_quiet()
        for k in range(20):
            for name in (f"u{k}", f"v{k}"):
                record = system.history.txn(name)
                assert record.local_latency < 0.1
                assert record.remote_wait == 0.0
        # The advancement did eventually complete, after the partition.
        record = system.history.advancements[0]
        assert record.phase1_done > 50.0
        assert system.read_version == 1
        check_all(system)

    def test_partition_during_phase2_delays_only_gc(self):
        """Counter-read replies from q stall mid-advancement; user work
        keeps running and the advancement completes afterwards."""
        system = self.make_system(
            stalled=[("q", "coordinator")], start=8.0, end=40.0
        )
        system.submit_at(1.0, local_txn("u0", "p", "x"))
        system.sim.schedule(5.0, system.advance_versions)
        system.submit_at(20.0, local_txn("u1", "q", "y"))
        system.run_until_quiet()
        assert system.history.txn("u1").remote_wait == 0.0
        assert system.read_version == 1
        assert system.history.advancements[0].gc_done > 40.0


class TestExtremeStragglers:
    def test_descendant_delayed_past_two_advancements(self):
        """A version-1 child held in transit while the system advances
        twice: it must still land correctly (the quiescence check of each
        advancement waits for it — version 1 cannot become readable
        until it completes)."""
        system = ThreeVSystem(
            ["p", "q"], seed=1,
            latency=LinkLatency(
                links={("p", "q"): Constant(30.0)}, default=Constant(1.0)
            ),
            poll_interval=0.5,
        )
        system.load("p", "x", 0)
        system.load("q", "y", 0)
        spec = TransactionSpec(
            name="slow",
            root=SubtxnSpec(
                node="p", ops=[WriteOp("x", Increment(1))],
                children=[SubtxnSpec(node="q", ops=[WriteOp("y", Increment(1))])],
            ),
        )
        system.submit_at(1.0, spec)
        system.sim.schedule(2.0, system.advance_versions)
        system.run_until_quiet()
        # The first advancement could not declare version 1 quiescent
        # before the child landed at t=31.
        assert system.history.advancements[0].phase2_done > 31.0
        assert system.value_at("q", "y") == 1
        # A second advancement then runs normally.
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 2
        check_all(system)


class TestCompensationRaces:
    def test_compensation_overtakes_original(self):
        """The aborting subtransaction's compensation toward the root can
        overtake a sibling subtransaction still in transit on a reordering
        link; the tombstone mechanism must suppress the sibling when it
        finally arrives.  (Seed chosen so the overtake happens; asserted
        via the tombstone count.)"""
        from repro.sim import Uniform

        system = ThreeVSystem(
            ["p", "b", "c"], seed=1,
            latency=LinkLatency(
                links={("p", "c"): Uniform(1.0, 30.0)},  # reordering link
                default=Constant(0.5),
            ),
        )
        system.load("p", "kp", 100)
        system.load("b", "kb", 100)
        system.load("c", "kc", 100)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(
                node="p", ops=[WriteOp("kp", Increment(1))],
                children=[
                    SubtxnSpec(node="b", ops=[WriteOp("kb", Increment(1))],
                               abort_here=True),
                    SubtxnSpec(node="c", ops=[WriteOp("kc", Increment(1))]),
                ],
            ),
        )
        system.submit(spec)
        system.run_until_quiet()
        record = system.history.txn("t")
        assert record.aborted and record.compensated
        # The compensation really did arrive first at c.
        assert system.node("c").tombstones_created == 1
        # No residue anywhere: the tombstoned original never applied.
        assert system.node("p").store.read_max_leq("kp", 1) == 100
        assert system.node("b").store.read_max_leq("kb", 1) == 100
        assert system.node("c").store.read_max_leq("kc", 1) == 100
        # Counters still converge: the next advancement terminates.
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1

    def test_tombstoned_original_does_not_dispatch_grandchildren(self):
        """If the suppressed subtransaction had children of its own, they
        must never run (their nodes are untouched)."""
        from repro.sim import Uniform

        system = ThreeVSystem(
            ["p", "b", "c", "d"], seed=1,
            latency=LinkLatency(
                links={("p", "c"): Uniform(1.0, 30.0)},
                default=Constant(0.5),
            ),
        )
        for node, key in (("p", "kp"), ("b", "kb"), ("c", "kc"), ("d", "kd")):
            system.load(node, key, 0)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(
                node="p", ops=[WriteOp("kp", Increment(1))],
                children=[
                    SubtxnSpec(node="b", ops=[WriteOp("kb", Increment(1))],
                               abort_here=True),
                    SubtxnSpec(
                        node="c", ops=[WriteOp("kc", Increment(1))],
                        children=[SubtxnSpec(node="d",
                                             ops=[WriteOp("kd", Increment(1))])],
                    ),
                ],
            ),
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.node("d").store.get_exact("kd", 0) == 0
        assert system.node("d").store.versions("kd") == [0]
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1


class TestSlowNodeUnderLoad:
    def test_one_overloaded_node_does_not_fracture_reads(self):
        """One node serves 50x slower; everything queues there but the
        oracle stays clean and other nodes' local traffic is unaffected."""
        from repro.core import NodeConfig
        from repro.sim import Constant as Const

        node_ids = ["n0", "n1", "n2", "n3"]
        system = ThreeVSystem(
            node_ids, seed=3,
            node_config=NodeConfig(op_service=Const(0.001)),
        )
        # Overload n0 by swapping in a tiny-capacity, slow executor.
        system.node("n0").config = NodeConfig(op_service=Const(0.05))
        config = RecordingConfig(nodes=node_ids, entities=8, span=2,
                                 amount_mode="bitmask")
        workload = RecordingWorkload(config, RngRegistry(4))
        workload.install(system)
        arrivals = RngRegistry(5)
        drive(system, poisson_arrivals(arrivals, "u", 6.0, 20.0),
              workload.make_recording)
        drive(system, poisson_arrivals(arrivals, "r", 4.0, 20.0),
              workload.make_inquiry)
        system.sim.schedule(10.0, system.advance_versions)
        system.run(until=20.0)
        system.run_until_quiet()
        report = audit(system.history, workload, check_snapshots=True)
        assert report.clean, report.violations[:3]
        assert max_remote_wait(system.history) == 0.0
