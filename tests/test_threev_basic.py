"""Integration tests for the 3V protocol core (single scenarios)."""

import pytest

from repro.core import ThreeVSystem, check_all
from repro.errors import ProtocolError
from repro.storage import Assign, Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, TxnKind, WriteOp


def two_node_system(**kwargs):
    system = ThreeVSystem(["p", "q"], seed=3, **kwargs)
    system.load("p", "x", 100)
    system.load("q", "y", 200)
    return system


def visit_txn(name, dx=10, dy=20, abort_at_q=False):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p",
            ops=[WriteOp("x", Increment(dx))],
            children=[
                SubtxnSpec(
                    node="q",
                    ops=[WriteOp("y", Increment(dy))],
                    abort_here=abort_at_q,
                )
            ],
        ),
    )


def balance_query(name):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p",
            ops=[ReadOp("x")],
            children=[SubtxnSpec(node="q", ops=[ReadOp("y")])],
        ),
    )


class TestUpdateExecution:
    def test_update_writes_version_1_reads_see_version_0(self):
        system = two_node_system()
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        # Updates landed in version 1 on both nodes.
        assert system.node("p").store.get_exact("x", 1) == 110
        assert system.node("q").store.get_exact("y", 1) == 220
        # Version 0 untouched; a query would still see it.
        assert system.value_at("p", "x") == 100
        assert system.value_at("q", "y") == 200

    def test_transaction_completes_globally(self):
        system = two_node_system()
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        record = system.history.txn("t1")
        assert record.kind == TxnKind.UPDATE
        assert record.version == 1
        assert record.local_commit_time is not None
        assert record.global_complete_time is not None
        assert record.global_complete_time >= record.local_commit_time

    def test_counters_match_after_completion(self):
        system = two_node_system()
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        p, q = system.node("p"), system.node("q")
        assert p.counters.request_count(1, "p") == 1  # root arrival
        assert p.counters.request_count(1, "q") == 1  # child dispatch
        assert p.counters.completion_count(1, "p") == 1  # root completed
        assert q.counters.completion_count(1, "p") == 1  # child completed

    def test_update_reads_see_own_version(self):
        """An update transaction reads version <= V(T), including data it
        or concurrent updates of the same version wrote."""
        system = two_node_system()
        system.submit(
            TransactionSpec(
                name="w",
                root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(5))]),
            )
        )
        system.run_until_quiet()
        system.submit(
            TransactionSpec(
                name="r-as-update",
                root=SubtxnSpec(
                    node="p",
                    ops=[ReadOp("x"), WriteOp("x", Increment(0))],
                ),
            )
        )
        system.run_until_quiet()
        record = system.history.txn("r-as-update")
        assert record.reads == [("x", 105)]

    def test_queries_never_wait(self):
        system = two_node_system()
        for i in range(5):
            system.submit(visit_txn(f"u{i}"))
            system.submit(balance_query(f"q{i}"))
        system.run_until_quiet()
        for i in range(5):
            record = system.history.txn(f"q{i}")
            assert record.remote_wait == 0.0

    def test_updates_have_zero_remote_wait(self):
        """Theorem 4.2: no subtransaction waits for non-local activity."""
        system = two_node_system()
        for i in range(10):
            system.submit(visit_txn(f"u{i}"))
        system.run_until_quiet()
        for i in range(10):
            assert system.history.txn(f"u{i}").remote_wait == 0.0


class TestVersionAdvancement:
    def test_advancement_exposes_new_data_to_reads(self):
        system = two_node_system()
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1
        assert system.update_version == 2
        assert system.value_at("p", "x") == 110
        assert system.value_at("q", "y") == 220

    def test_advancement_garbage_collects_old_versions(self):
        system = two_node_system()
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        assert system.node("p").store.versions("x") == [1]
        assert system.node("q").store.versions("y") == [1]

    def test_untouched_items_renamed_on_gc(self):
        system = two_node_system()
        system.load("p", "cold", 7)
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        assert system.node("p").store.versions("cold") == [1]
        assert system.value_at("p", "cold") == 7

    def test_repeated_advancements(self):
        system = two_node_system()
        for round_number in range(4):
            system.submit(visit_txn(f"t{round_number}"))
            system.run_until_quiet()
            system.advance_versions()
            system.run_until_quiet()
            check_all(system)
        assert system.read_version == 4
        assert system.update_version == 5
        assert system.value_at("p", "x") == 100 + 4 * 10
        assert system.value_at("q", "y") == 200 + 4 * 20

    def test_advancement_with_no_traffic(self):
        system = two_node_system()
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1
        assert system.value_at("p", "x") == 100

    def test_concurrent_advancement_rejected(self):
        from repro.errors import AdvancementInProgress

        system = two_node_system()
        system.advance_versions()
        with pytest.raises(AdvancementInProgress):
            system.advance_versions()
        system.run_until_quiet()
        # After completion a new advancement is fine.
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 2

    def test_query_during_advancement_sees_consistent_version(self):
        """Queries started before phase 3 keep using the old read version."""
        system = two_node_system()
        system.submit(visit_txn("t1"))
        system.run_until_quiet()
        system.advance_versions()
        system.submit(balance_query("early-q"))  # arrives during phase 1/2
        system.run_until_quiet()
        record = system.history.txn("early-q")
        assert record.version == 0
        assert record.reads == [("x", 100), ("y", 200)]


class TestCompensation:
    def test_aborted_transaction_leaves_no_effect(self):
        system = two_node_system()
        system.submit(visit_txn("bad", abort_at_q=True))
        system.run_until_quiet()
        record = system.history.txn("bad")
        assert record.aborted
        assert record.compensated
        # All effects rolled back on both nodes.
        assert system.node("p").store.read_max_leq("x", 99) == 100
        assert system.node("q").store.read_max_leq("y", 99) == 200

    def test_counters_converge_through_compensation(self):
        system = two_node_system()
        system.submit(visit_txn("bad", abort_at_q=True))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()  # phase 2 must terminate despite the abort
        assert system.read_version == 1

    def test_aborted_and_committed_mix(self):
        system = two_node_system()
        system.submit(visit_txn("good1"))
        system.submit(visit_txn("bad", abort_at_q=True))
        system.submit(visit_txn("good2"))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        assert system.value_at("p", "x") == 120  # two good visits only
        assert system.value_at("q", "y") == 240

    def test_deep_tree_compensation(self):
        """Abort three levels down: compensation walks back up the tree."""
        system = ThreeVSystem(["a", "b", "c"], seed=5)
        system.load("a", "ka", 0)
        system.load("b", "kb", 0)
        system.load("c", "kc", 0)
        spec = TransactionSpec(
            name="deep",
            root=SubtxnSpec(
                node="a",
                ops=[WriteOp("ka", Increment(1))],
                children=[
                    SubtxnSpec(
                        node="b",
                        ops=[WriteOp("kb", Increment(1))],
                        children=[
                            SubtxnSpec(
                                node="c",
                                ops=[WriteOp("kc", Increment(1))],
                                abort_here=True,
                            )
                        ],
                    )
                ],
            ),
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.node("a").store.get_exact("ka", 1) == 0
        assert system.node("b").store.get_exact("kb", 1) == 0
        assert system.node("c").store.get_exact("kc", 1) == 0


class TestRejections:
    def test_noncommuting_rejected_without_nc3v(self):
        system = two_node_system()
        spec = TransactionSpec(
            name="nc",
            root=SubtxnSpec(node="p", ops=[WriteOp("x", Assign(0))]),
        )
        with pytest.raises(ProtocolError):
            system.submit(spec)

    def test_unknown_node_rejected(self):
        system = two_node_system()
        spec = TransactionSpec(
            name="t", root=SubtxnSpec(node="mars", ops=[ReadOp("x")])
        )
        with pytest.raises(ProtocolError):
            system.submit(spec)

    def test_empty_system_rejected(self):
        with pytest.raises(ProtocolError):
            ThreeVSystem([])
