"""Edge cases of the 3V node: routing-only subtransactions, fresh keys,
concurrency knobs, FIFO links, and lightweight histories."""

import pytest

from repro.core import NodeConfig, ThreeVSystem
from repro.errors import ProtocolError
from repro.net import constant_latency
from repro.sim import Constant
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp


class TestFrontEndPattern:
    def test_empty_root_subtransaction_routes_children(self):
        """Figure 1's front-end: 'the empty subtransaction in the
        front-end system functions as the root subtransaction'."""
        system = ThreeVSystem(["front-end", "radiology", "pediatrics"], seed=1)
        system.load("radiology", "x", 0)
        system.load("pediatrics", "y", 0)
        spec = TransactionSpec(
            name="visit",
            root=SubtxnSpec(
                node="front-end",
                ops=[],  # pure router
                children=[
                    SubtxnSpec(node="radiology",
                               ops=[WriteOp("x", Increment(1))]),
                    SubtxnSpec(node="pediatrics",
                               ops=[WriteOp("y", Increment(2))]),
                ],
            ),
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.node("radiology").store.get_exact("x", 1) == 1
        assert system.node("pediatrics").store.get_exact("y", 1) == 2
        record = system.history.txn("visit")
        assert record.global_complete_time is not None
        assert record.remote_wait == 0.0

    def test_front_end_counters_converge(self):
        system = ThreeVSystem(["fe", "a"], seed=1)
        system.load("a", "k", 0)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(node="fe", ops=[], children=[
                SubtxnSpec(node="a", ops=[WriteOp("k", Increment(1))]),
            ]),
        )
        system.submit(spec)
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1


class TestFreshKeys:
    def test_update_creates_brand_new_item(self):
        """A recording of a brand-new entity: no version-0 copy exists;
        the item is born directly in the update version."""
        system = ThreeVSystem(["p"], seed=1)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(node="p", ops=[WriteOp("new-key", Increment(7))]),
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.node("p").store.versions("new-key") == [1]
        assert system.node("p").store.get_exact("new-key", 1) == 7
        # Not visible to readers until an advancement.
        assert system.value_at("p", "new-key") is None
        system.advance_versions()
        system.run_until_quiet()
        assert system.value_at("p", "new-key") == 7

    def test_read_of_absent_key_returns_none(self):
        system = ThreeVSystem(["p"], seed=1)
        spec = TransactionSpec(
            name="q", root=SubtxnSpec(node="p", ops=[ReadOp("ghost")])
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.history.txn("q").reads == [("ghost", None)]


class TestExecutorKnobs:
    def _burst_system(self, capacity):
        system = ThreeVSystem(
            ["p"], seed=1,
            node_config=NodeConfig(op_service=Constant(0.5),
                                   executor_capacity=capacity),
        )
        system.load("p", "x", 0)
        for index in range(4):
            system.submit(TransactionSpec(
                name=f"t{index}",
                root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(1))]),
            ))
        system.run_until_quiet()
        return system

    def test_serial_executor_queues(self):
        system = self._burst_system(capacity=1)
        total_executor_wait = sum(
            record.waits.get("executor", 0.0)
            for record in system.history.txns.values()
        )
        # 4 jobs of 0.5 each, serial: waits 0 + .5 + 1 + 1.5 = 3.0.
        assert total_executor_wait == pytest.approx(3.0)

    def test_wider_executor_reduces_queueing(self):
        system = self._burst_system(capacity=4)
        total_executor_wait = sum(
            record.waits.get("executor", 0.0)
            for record in system.history.txns.values()
        )
        assert total_executor_wait == pytest.approx(0.0)
        # Commutativity: final value identical either way.
        assert system.node("p").store.get_exact("x", 1) == 4

    def test_executor_stats_exposed(self):
        system = self._burst_system(capacity=1)
        assert system.node("p").executor.total_waits == 3
        assert system.node("p").executor.total_wait_time == pytest.approx(3.0)


class TestTransportVariants:
    def test_fifo_links_full_protocol(self):
        from repro.analysis import audit
        from repro.sim import RngRegistry
        from repro.workloads import RecordingConfig, RecordingWorkload
        from repro.workloads.arrivals import drive, poisson_arrivals

        node_ids = ["a", "b", "c"]
        system = ThreeVSystem(node_ids, seed=9, fifo_links=True)
        config = RecordingConfig(nodes=node_ids, entities=6, span=2,
                                 amount_mode="bitmask")
        workload = RecordingWorkload(config, RngRegistry(10))
        workload.install(system)
        arrivals = RngRegistry(11)
        drive(system, poisson_arrivals(arrivals, "u", 4.0, 15.0),
              workload.make_recording)
        drive(system, poisson_arrivals(arrivals, "r", 3.0, 15.0),
              workload.make_inquiry)
        system.sim.schedule(7.0, system.advance_versions)
        system.run(until=15.0)
        system.run_until_quiet()
        report = audit(system.history, workload, check_snapshots=True)
        assert report.clean

    def test_detail_off_keeps_lifecycle_metrics(self):
        system = ThreeVSystem(["p", "q"], seed=1, detail=False)
        system.load("p", "x", 0)
        system.load("q", "y", 0)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(1))],
                            children=[SubtxnSpec(
                                node="q", ops=[WriteOp("y", Increment(1))])]),
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.history.write_events == []
        record = system.history.txn("t")
        assert record.local_latency is not None
        assert record.global_latency is not None


class TestProtocolErrors:
    def test_unexpected_message_kind_raises(self):
        from repro.net.message import Message

        system = ThreeVSystem(["p"], seed=1)
        system.network.register("intruder")
        system.network.send("intruder", "p", "nonsense-kind")
        with pytest.raises(ProtocolError):
            system.run_until_quiet()

    def test_submit_non_root_rejected(self):
        from repro.txn import SubtxnInstance, TxnIndex

        system = ThreeVSystem(["p", "q"], seed=1)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(node="p", children=[SubtxnSpec(node="q")]),
        )
        index = TxnIndex(spec)
        child = SubtxnInstance(txn=spec, index=index, sid="t.0", version=1,
                               source_node="p")
        with pytest.raises(ProtocolError):
            system.node("q").submit(child)

    def test_reads_spanning_nodes_with_stale_vr(self):
        """A query child carries the root's vr even to nodes that have
        not yet processed the read-advance message."""
        from repro.net import PartitionedLatency, constant_latency

        latency = PartitionedLatency(
            base=constant_latency(0.5),
            stalled_links=[("coordinator", "q")],
            start=3.0,  # after phase 1's notice, before phase 3's
            end=40.0,
        )
        system = ThreeVSystem(["p", "q"], seed=1, latency=latency,
                              poll_interval=0.25)
        system.load("p", "x", 1)
        system.load("q", "y", 2)
        # Write both items at version 1, then advance.
        system.submit(TransactionSpec(
            name="w",
            root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(10))],
                            children=[SubtxnSpec(
                                node="q", ops=[WriteOp("y", Increment(10))])]),
        ))
        system.run(until=0.5)
        system.advance_versions()
        # q's read-advance is held by the partition; p flips quickly.
        system.run(until=20.0)
        assert system.node("p").vr == 1
        assert system.node("q").vr == 0
        # A query rooted at p carries version 1 to q and reads y(1) there
        # even though q's own vr is still 0.
        system.submit(TransactionSpec(
            name="r",
            root=SubtxnSpec(node="p", ops=[ReadOp("x")],
                            children=[SubtxnSpec(node="q",
                                                 ops=[ReadOp("y")])]),
        ))
        system.run_until_quiet()
        assert dict(system.history.txn("r").reads) == {"x": 11, "y": 12}
