"""Unit tests for replication statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import mean_ci, replicate, welch_p_value


class TestMeanCI:
    def test_simple_interval(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == 2.0
        assert ci.low < 2.0 < ci.high
        assert ci.n == 3

    def test_single_value_degenerate(self):
        ci = mean_ci([5.0])
        assert ci.mean == ci.low == ci.high == 5.0
        assert ci.half_width == 0.0

    def test_identical_values_zero_width(self):
        ci = mean_ci([4.0, 4.0, 4.0, 4.0])
        assert ci.half_width == pytest.approx(0.0)

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = mean_ci(values, confidence=0.80)
        wide = mean_ci(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_more_samples_narrower(self):
        narrow = mean_ci([1.0, 2.0, 3.0] * 10)
        wide = mean_ci([1.0, 2.0, 3.0])
        assert narrow.half_width < wide.half_width

    def test_str_format(self):
        assert "±" in str(mean_ci([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.5)

    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=2, max_size=30))
    def test_mean_always_inside_interval(self, values):
        ci = mean_ci(values)
        assert ci.low <= ci.mean <= ci.high


class TestWelch:
    def test_clearly_different_samples(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95]
        b = [5.0, 5.1, 4.9, 5.05, 4.95]
        assert welch_p_value(a, b) < 0.001

    def test_identical_samples(self):
        a = [1.0, 2.0, 3.0]
        assert welch_p_value(a, a) == pytest.approx(1.0)

    def test_degenerate_equal(self):
        assert welch_p_value([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_degenerate_different(self):
        assert welch_p_value([2.0, 2.0], [3.0, 3.0]) == 0.0

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            welch_p_value([1.0], [2.0, 3.0])


class TestReplicate:
    def test_runs_per_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return seed * 2.0

        assert replicate(run, [1, 2, 3]) == [2.0, 4.0, 6.0]
        assert seen == [1, 2, 3]

    def test_with_experiments(self):
        from repro.analysis import throughput
        from repro.workloads import run_recording_experiment

        def goodput(seed):
            result = run_recording_experiment(
                "3v", nodes=3, duration=10.0, update_rate=4.0,
                inquiry_rate=1.0, audit_rate=0.0, entities=10, span=2,
                seed=seed, detail=False,
            )
            return throughput(result.history, 10.0, kind="update")

        values = replicate(goodput, [1, 2, 3])
        ci = mean_ci(values)
        assert 2.0 < ci.mean < 6.0
