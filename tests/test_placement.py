"""Replication: placement maps, refresh, and recovery-readability.

The placement layer's contract has three parts, each tested here:

* ``ReplicaMap`` is a pure, seeded function of its inputs — same seed,
  same map, on every host — with structural invariants (distinct
  replicas, consecutive ring segments, rf=1 collapsing to the historic
  single-owner assignment) and statistical balance.
* Refresh makes a crashed-and-recovered replica's copy byte-equal to the
  copies that never crashed, even when the *source* of the transfer has
  itself been through a journal replay.
* Recovery-readability: a recovered-but-unrefreshed replica never serves
  a read — readers gate on the refresh, then observe the refreshed state.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ThreeVSystem
from repro.errors import SimulationError
from repro.exp import ExperimentSpec
from repro.faults import FaultPlan
from repro.placement import PlacementState, ReplicaMap
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp
from repro.workloads import RecordingConfig, run_recording_experiment

MAPS = settings(
    max_examples=50, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_map(n_nodes, entities, span, rf, seed):
    nodes = [f"n{i:02d}" for i in range(n_nodes)]
    return ReplicaMap.generate(nodes, entities, span, rf,
                               random.Random(seed))


@st.composite
def map_params(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=8))
    return {
        "n_nodes": n_nodes,
        "entities": draw(st.integers(min_value=0, max_value=40)),
        "span": draw(st.integers(min_value=1, max_value=n_nodes)),
        "rf": draw(st.integers(min_value=1, max_value=n_nodes)),
        "seed": draw(st.integers(min_value=0, max_value=2**32 - 1)),
    }


class TestReplicaMapProperties:
    @MAPS
    @given(map_params())
    def test_generation_is_deterministic(self, params):
        """Same nodes + seed -> the identical map, draw for draw."""
        first = make_map(**params)
        second = make_map(**params)
        assert list(first.slot_items()) == list(second.slot_items())

    @MAPS
    @given(map_params())
    def test_replicas_are_distinct_consecutive_ring_segments(self, params):
        placement = make_map(**params)
        ring = placement.nodes
        for entity, slot, replicas in placement.slot_items():
            assert len(replicas) == params["rf"]
            assert len(set(replicas)) == len(replicas)
            assert replicas[0] == placement.home(entity, slot)
            first = ring.index(replicas[0])
            expected = tuple(
                ring[(first + k) % len(ring)] for k in range(params["rf"])
            )
            assert replicas == expected

    @MAPS
    @given(map_params())
    def test_rf1_collapses_to_the_single_owner_map(self, params):
        """At rf=1 the replica list of every slot is exactly its home —
        the historic ``entity_nodes`` assignment — and the same seed
        produces the same homes at every replication factor (the start
        draws are shared)."""
        single = make_map(**{**params, "rf": 1})
        replicated = make_map(**params)
        for entity in range(params["entities"]):
            homes = single.homes(entity)
            assert homes == replicated.homes(entity)
            for slot in range(params["span"]):
                assert single.replicas(entity, slot) == (homes[slot],)

    @MAPS
    @given(map_params())
    def test_load_accounts_for_every_copy(self, params):
        placement = make_map(**params)
        load = placement.load_per_node()
        total = params["entities"] * params["span"] * params["rf"]
        assert sum(load.values()) == total

    def test_balance_on_a_large_fixed_case(self):
        """4000 entities x 2 slots x 3 copies over 8 nodes: random ring
        starts keep per-node load within a few percent of the mean.
        Fixed seed, so this is a deterministic regression bound, not a
        flaky statistical assertion."""
        placement = make_map(n_nodes=8, entities=4000, span=2, rf=3,
                             seed=123)
        load = placement.load_per_node()
        mean = sum(load.values()) / len(load)
        assert mean == 3000.0
        assert max(load.values()) / min(load.values()) < 1.15


class TestValidation:
    def test_rf_must_not_exceed_node_count(self):
        with pytest.raises(SimulationError, match="replication_factor"):
            make_map(n_nodes=3, entities=5, span=2, rf=4, seed=0)

    def test_rf_must_be_positive(self):
        with pytest.raises(SimulationError, match="replication_factor"):
            make_map(n_nodes=3, entities=5, span=2, rf=0, seed=0)

    def test_workload_config_rejects_oversized_rf(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="use span to"):
            RecordingConfig(nodes=["a", "b"], entities=4,
                            replication_factor=3)

    def test_refresh_delay_must_be_positive(self):
        with pytest.raises(SimulationError, match="refresh_delay"):
            PlacementState(refresh_delay=0.0)


class TestSpecDigestCompatibility:
    def test_rf1_digest_ignores_the_replication_axes(self):
        """Unreplicated specs must keep their pre-replication content
        addresses, so cached fleet results stay valid: at rf=1 neither
        new field participates in the digest."""
        base = ExperimentSpec(protocol="3v")
        explicit = ExperimentSpec(protocol="3v", replication_factor=1,
                                  refresh_delay=2.0)
        odd_delay = ExperimentSpec(protocol="3v", replication_factor=1,
                                   refresh_delay=99.0)
        assert base.digest() == explicit.digest() == odd_delay.digest()

    def test_replicated_digests_differ(self):
        base = ExperimentSpec(protocol="3v")
        rf2 = ExperimentSpec(protocol="3v", replication_factor=2)
        rf2_slow = ExperimentSpec(protocol="3v", replication_factor=2,
                                  refresh_delay=9.0)
        assert len({base.digest(), rf2.digest(), rf2_slow.digest()}) == 3


def _replica_chains(result):
    """Full (version, value) chain of every record copy, by replica."""
    system = result.system
    for entity, slot, key, replicas in result.workload.replica_groups():
        chains = {}
        for node_id in replicas:
            store = system.node(node_id).store
            chains[node_id] = tuple(
                (version, store.get_exact(key, version))
                for version in store.versions(key)
            )
        yield entity, slot, key, chains


class TestRefreshConvergence:
    @pytest.mark.parametrize("protocol", ["3v", "nocoord", "2pc"])
    @pytest.mark.parametrize("rf", [2, 3])
    def test_refreshed_copies_equal_their_sources(self, protocol, rf):
        """Under a storm that crashes every node once, all replica chains
        — balance counters and observation logs alike — end byte-equal.
        Every node recovers via journal replay, so the refresh sources
        are themselves WAL-replayed stores, not pristine ones."""
        result = run_recording_experiment(
            protocol, nodes=4, duration=15, entities=30,
            replication_factor=rf, refresh_delay=1.5,
            drop_rate=0.05, dup_rate=0.02, crash_count=1, fault_seed=7,
            seed=3,
        )
        system = result.system
        assert system.recovery_count == system.crash_count == 4
        for entity, slot, key, chains in _replica_chains(result):
            distinct = set(chains.values())
            assert len(distinct) == 1, (
                f"entity {entity} slot {slot} ({key!r}) diverged: {chains}"
            )
        counters = result.system.placement.counters()
        assert counters["unreadable_reads_served"] == 0
        refreshes = (counters["refreshes_completed"]
                     + counters["self_refreshes"])
        assert refreshes >= system.recovery_count
        if protocol != "2pc":
            # 2PC's engine blocks on down replicas instead of skipping,
            # so only the write-all-available protocols ledger anything.
            assert counters["writes_skipped"] > 0
            assert (counters["refresh_ops_applied"]
                    == counters["ops_ledgered"]
                    - counters["ops_cancelled"])

    def test_replicated_runs_are_repeatable(self):
        runs = [
            run_recording_experiment(
                "3v", nodes=4, duration=12, entities=20,
                replication_factor=3, refresh_delay=1.5,
                drop_rate=0.05, dup_rate=0.02, crash_count=1,
                fault_seed=7, seed=5,
            )
            for _ in range(2)
        ]
        assert (runs[0].system.sim.scheduled_count
                == runs[1].system.sim.scheduled_count)
        assert (runs[0].system.placement.counters()
                == runs[1].system.placement.counters())

    def test_compensation_cancels_ledgered_originals(self):
        """Aborting transactions under replication: a compensator that
        overtakes a skipped original annihilates the ledger entry, and
        the replicas still converge."""
        result = run_recording_experiment(
            "3v", nodes=4, duration=15, entities=20,
            abort_fraction=0.3, replication_factor=2, refresh_delay=1.5,
            drop_rate=0.03, dup_rate=0.02, crash_count=1, fault_seed=11,
            seed=9,
        )
        for entity, slot, key, chains in _replica_chains(result):
            assert len(set(chains.values())) == 1

    def test_rf1_runs_are_bit_identical_to_unreplicated_runs(self):
        """Passing ``replication_factor=1`` explicitly attaches nothing
        and perturbs nothing: event counts, transaction counts, and every
        store chain match a run that never mentioned replication."""
        baseline = run_recording_experiment("3v", nodes=3, duration=8,
                                            entities=15, seed=2)
        explicit = run_recording_experiment("3v", nodes=3, duration=8,
                                            entities=15, seed=2,
                                            replication_factor=1,
                                            refresh_delay=77.0)
        assert explicit.system.placement is None
        assert (baseline.system.sim.scheduled_count
                == explicit.system.sim.scheduled_count)
        assert (baseline.system.history.total_txns
                == explicit.system.history.total_txns)
        assert (baseline.workload.entity_homes
                == explicit.workload.entity_homes)
        for node_id in ("n00", "n01", "n02"):
            base_store = baseline.system.node(node_id).store
            other_store = explicit.system.node(node_id).store
            for key in base_store.keys():
                assert (base_store.versions(key)
                        == other_store.versions(key))
                for version in base_store.versions(key):
                    assert (base_store.get_exact(key, version)
                            == other_store.get_exact(key, version))


def replicated_write(name, amount):
    """A commuting increment fanned out to both replicas of ``x``."""
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p", ops=[WriteOp("x", Increment(amount))],
            children=[SubtxnSpec(node="q",
                                 ops=[WriteOp("x", Increment(amount))])],
        ),
    )


class TestRecoveryReadability:
    def test_unrefreshed_replica_never_serves_a_read(self):
        """Crash a replica during an advancement wave, keep writing (the
        skips land in the ledger), recover it, and immediately aim a
        pinned read at it: the read must gate on the refresh and observe
        the fully refreshed value — never the stale journal-replayed
        state."""
        placement = PlacementState(refresh_delay=2.0)
        system = ThreeVSystem(["p", "q"], seed=1, faults=FaultPlan(),
                              poll_interval=0.25, placement=placement)
        system.load("p", "x", 0)
        system.load("q", "x", 0)
        for i in range(4):
            system.submit_at(float(i), replicated_write(f"pre{i}", 1 << i))
        system.sim.schedule(5.0, system.advance_versions)
        # Crash q mid-advancement; the next writes skip its copy.
        system.sim.schedule(5.5, system.crash, "q")
        for i in range(4, 8):
            system.submit_at(6.0 + (i - 4), replicated_write(f"down{i}",
                                                             1 << i))
        system.sim.schedule(12.0, system.recover, "q")

        observed = {}
        mark_readable = placement.refresh._mark_readable

        def recording_mark_readable(node_id):
            observed["refreshed_at"] = system.sim.now
            mark_readable(node_id)

        placement.refresh._mark_readable = recording_mark_readable

        def submit_probe():
            # q is back up but must still be unrefreshed: the refresh
            # request itself waits out refresh_delay.
            assert "q" in placement.refresh.unrefreshed
            observed["submitted_at"] = system.sim.now
            system.submit(TransactionSpec(
                name="probe",
                root=SubtxnSpec(node="q", ops=[ReadOp("x")]),
            ))

        system.sim.schedule(12.1, submit_probe)
        system.run(until=30.0)
        system.run_until_quiet(limit=1000.0)
        # A second advancement wave after everything drained, so a late
        # read's version covers the writes q only ever received via the
        # ledger.
        system.advance_versions()
        system.run_until_quiet(limit=1000.0)
        system.submit(TransactionSpec(
            name="late-probe",
            root=SubtxnSpec(node="q", ops=[ReadOp("x")]),
        ))
        system.run_until_quiet(limit=1000.0)

        counters = placement.counters()
        assert counters["writes_skipped"] == 4
        assert counters["refreshes_completed"] == 1
        assert counters["reads_gated"] >= 1
        assert counters["unreadable_reads_served"] == 0
        # The gated probe executed only once the refresh marked q
        # readable — the journal-replayed-but-unrefreshed store never
        # served it.
        (read_event,) = [e for e in system.history.read_events
                         if e.txn == "probe"]
        assert read_event.time > observed["submitted_at"]
        assert read_event.time >= observed["refreshed_at"]
        # The late probe reads q at a version covering the down-window
        # writes and sees all eight increments — four of which reached q
        # exclusively through the refresh transfer.
        (late_event,) = [e for e in system.history.read_events
                         if e.txn == "late-probe"]
        assert late_event.node == "q"
        assert late_event.value == sum(1 << i for i in range(8))
        # And q's whole chain is byte-equal to p's, ledgered writes
        # included.
        p_store, q_store = system.node("p").store, system.node("q").store
        assert p_store.versions("x") == q_store.versions("x")
        for version in p_store.versions("x"):
            assert (p_store.get_exact("x", version)
                    == q_store.get_exact("x", version))
