"""Unit tests for request/completion counter tables and the quiescence check."""

import pytest

from repro.errors import CounterError
from repro.storage import CounterTable, quiescent


@pytest.fixture
def table():
    t = CounterTable("p")
    t.ensure_version(1)
    return t


class TestCounterTable:
    def test_increments_accumulate(self, table):
        table.inc_request(1, "q")
        table.inc_request(1, "q")
        table.inc_request(1, "s")
        assert table.requests(1) == {"q": 2, "s": 1}

    def test_completion_counters_keyed_by_source(self, table):
        table.inc_completion(1, "q")
        table.inc_completion(1, "p")
        assert table.completions(1) == {"q": 1, "p": 1}

    def test_unallocated_version_raises(self, table):
        with pytest.raises(CounterError):
            table.inc_request(2, "q")
        with pytest.raises(CounterError):
            table.inc_completion(2, "q")

    def test_point_reads_default_to_zero(self, table):
        assert table.request_count(1, "q") == 0
        assert table.completion_count(99, "q") == 0

    def test_snapshots_are_copies(self, table):
        table.inc_request(1, "q")
        snap = table.requests(1)
        table.inc_request(1, "q")
        assert snap == {"q": 1}

    def test_gc_below_drops_old_versions(self, table):
        table.ensure_version(2)
        table.inc_request(1, "q")
        table.inc_request(2, "q")
        table.gc_below(2)
        assert table.versions() == [2]
        assert table.request_count(1, "q") == 0
        assert table.request_count(2, "q") == 1

    def test_ensure_version_idempotent(self, table):
        table.inc_request(1, "q")
        table.ensure_version(1)
        assert table.request_count(1, "q") == 1


class TestQuiescence:
    def test_empty_system_is_quiescent(self):
        assert quiescent({}, {})

    def test_matching_counters_quiescent(self):
        requests = {"p": {"p": 1, "q": 2}, "q": {"p": 1}}
        completions = {"p": {"p": 1, "q": 1}, "q": {"p": 2}}
        assert quiescent(requests, completions)

    def test_in_flight_request_not_quiescent(self):
        requests = {"p": {"q": 2}}
        completions = {"q": {"p": 1}}
        assert not quiescent(requests, completions)

    def test_missing_rows_count_as_zero(self):
        assert not quiescent({"p": {"q": 1}}, {})
        assert not quiescent({}, {"q": {"p": 1}})

    def test_zero_entries_are_quiescent(self):
        assert quiescent({"p": {"q": 0}}, {"q": {}})

    def test_per_pair_check(self):
        """Totals matching is NOT enough: equality must hold per pair."""
        requests = {"p": {"q": 2, "s": 0}}
        completions = {"q": {"p": 1}, "s": {"p": 1}}
        assert not quiescent(requests, completions)
