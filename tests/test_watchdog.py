"""The advancement liveness watchdog (`advancement_stalls`).

A stall is a budget-exceeding gap between read-version advancements
(phase-3 completions), padded with the run's start and end so a system
that never advances — or stops advancing — is caught too.  The watchdog
also prices the degradation: the worst staleness suffered by a read
submitted inside a stall span.
"""

import types

from repro.analysis import StallSummary, advancement_stalls
from repro.txn.history import AdvancementRecord, History, TxnKind, TxnRecord


def history_with_marks(*phase3_times):
    history = History(detail=True)
    for i, done in enumerate(phase3_times):
        history.advancements.append(AdvancementRecord(
            new_update_version=i + 2, started=done - 1.0, phase3_done=done,
        ))
    return history


def add_read(history, name, version, submit_time):
    history.txns[name] = TxnRecord(
        name=name, kind=TxnKind.READ, version=version,
        submit_time=submit_time, root_node="p",
    )


class TestAdvancementStalls:
    def test_no_stalls_inside_budget(self):
        history = history_with_marks(4.0, 8.0, 12.0)
        stalls = advancement_stalls(history, horizon=15.0, budget=5.0)
        assert stalls == StallSummary()

    def test_leading_and_trailing_gaps_count(self):
        # First advancement at 12 with budget 5: stalled over [5, 12).
        # Nothing after 12 until the horizon 20: stalled over [17, 20).
        history = history_with_marks(12.0)
        stalls = advancement_stalls(history, horizon=20.0, budget=5.0)
        assert stalls.count == 2
        assert stalls.total == (12.0 - 5.0) + (20.0 - 17.0)
        assert stalls.longest == 7.0
        assert stalls.stalled_at_end

    def test_never_advancing_is_one_whole_run_stall(self):
        stalls = advancement_stalls(History(detail=True), horizon=30.0,
                                    budget=10.0)
        assert stalls.count == 1
        assert stalls.total == 20.0
        assert stalls.stalled_at_end

    def test_disabled_budgets_and_streaming_report_empty(self):
        history = history_with_marks(12.0)
        assert advancement_stalls(history, 20.0, 0.0) == StallSummary()
        assert advancement_stalls(history, 0.0, 5.0) == StallSummary()
        streaming = types.SimpleNamespace(streaming=True)
        assert advancement_stalls(streaming, 20.0, 5.0) == StallSummary()

    def test_marks_past_the_horizon_are_ignored(self):
        history = history_with_marks(4.0, 99.0)
        stalls = advancement_stalls(history, horizon=20.0, budget=5.0)
        assert stalls.count == 1  # the [9, 20) tail, 99 doesn't rescue it
        assert stalls.stalled_at_end

    def test_staleness_priced_only_inside_stall_spans(self):
        history = history_with_marks(12.0)
        closed_at = {1: 2.0}
        # Submitted at 8, inside the [5, 12) stall: staleness 6.
        add_read(history, "in-stall", version=1, submit_time=8.0)
        # Submitted at 12.5, between spans: its (larger) staleness is the
        # normal protocol lag, not stall degradation.
        add_read(history, "healthy", version=1, submit_time=12.5)
        stalls = advancement_stalls(history, horizon=20.0, budget=5.0,
                                    closed_at=closed_at)
        assert stalls.staleness_max == 8.0 - 2.0


class TestSummaryIntegration:
    def test_3v_summary_reports_stalls_against_a_tight_budget(self):
        from repro.exp import ExperimentSpec
        from repro.exp.summary import run_spec

        spec = ExperimentSpec(protocol="3v", nodes=2, duration=10.0,
                              update_rate=2.0, inquiry_rate=1.0, seed=1,
                              stall_budget=1.0)
        summary = run_spec(spec)
        # A 1-time-unit budget against the default advancement period is
        # sure to lapse; degradation shows up priced in staleness.
        assert summary.stall_count >= 1
        assert summary.stall_time > 0.0
        assert summary.longest_stall > 0.0

    def test_epoch_less_baselines_report_no_stalls(self):
        from repro.exp import ExperimentSpec
        from repro.exp.summary import run_spec

        spec = ExperimentSpec(protocol="manual", nodes=2, duration=10.0,
                              update_rate=2.0, inquiry_rate=1.0, seed=1,
                              stall_budget=1.0)
        summary = run_spec(spec)
        assert summary.stall_count == 0
        assert summary.stall_time == 0.0
        assert summary.coordinator_epoch == 0
