"""Property-based tests for the lock table.

Random sequences of acquire/release operations must preserve the two
safety invariants regardless of interleaving:

* no two *incompatible* modes are ever held on the same key;
* every request eventually resolves (granted or died) once all holders
  release — no lost wakeups.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.storage import LockMode, LockTable, compatible

MODES = [LockMode.CR, LockMode.CW, LockMode.NR, LockMode.NW]


@st.composite
def lock_scripts(draw):
    """A sequence of (txn, key, mode) acquires followed by releases."""
    n_txns = draw(st.integers(min_value=1, max_value=6))
    n_keys = draw(st.integers(min_value=1, max_value=3))
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=20))):
        txn = draw(st.integers(min_value=0, max_value=n_txns - 1))
        key = draw(st.integers(min_value=0, max_value=n_keys - 1))
        mode = draw(st.sampled_from(MODES))
        steps.append((txn, key, mode))
    release_order = draw(st.permutations(list(range(n_txns))))
    return steps, release_order


def holders_compatible(locks: LockTable, keys) -> bool:
    for key in keys:
        holders = list(locks.holders_of(key).items())
        for i, (txn_a, mode_a) in enumerate(holders):
            for txn_b, mode_b in holders[i + 1:]:
                if txn_a != txn_b and not compatible(mode_a, mode_b):
                    return False
    return True


class TestLockSafety:
    @settings(max_examples=200, deadline=None)
    @given(lock_scripts())
    def test_no_incompatible_coholders_ever(self, script):
        steps, release_order = script
        sim = Simulator()
        locks = LockTable(sim)
        events = []
        keys = {key for _txn, key, _mode in steps}
        mixed_family = set()
        for txn, key, mode in steps:
            family = "c" if mode in (LockMode.CR, LockMode.CW) else "n"
            if (txn, key, "n" if family == "c" else "c") in mixed_family:
                continue  # cross-family reacquire is a caller error
            mixed_family.add((txn, key, family))
            events.append(locks.acquire(key, mode, f"t{txn}", float(txn)))
            sim.run()
            assert holders_compatible(locks, keys)
        for txn in release_order:
            locks.cancel_waits(f"t{txn}")
            locks.release_all(f"t{txn}")
            sim.run()
            assert holders_compatible(locks, keys)

    @settings(max_examples=200, deadline=None)
    @given(lock_scripts())
    def test_every_request_eventually_resolves(self, script):
        steps, release_order = script
        sim = Simulator()
        locks = LockTable(sim)
        events = []
        mixed_family = set()
        for txn, key, mode in steps:
            family = "c" if mode in (LockMode.CR, LockMode.CW) else "n"
            if (txn, key, "n" if family == "c" else "c") in mixed_family:
                continue
            mixed_family.add((txn, key, family))
            events.append(locks.acquire(key, mode, f"t{txn}", float(txn)))
        sim.run()
        for txn in release_order:
            locks.cancel_waits(f"t{txn}")
            locks.release_all(f"t{txn}")
            sim.run()
        # After all releases, every request either triggered (granted or
        # failed with DeadlockAbort); nothing hangs.
        assert all(event.triggered for event in events)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from([LockMode.CR, LockMode.CW]),
                    min_size=1, max_size=30))
    def test_commuting_only_never_waits_never_dies(self, modes):
        """The zero-wait fast path: any mix of CR/CW from distinct
        transactions is granted instantly."""
        sim = Simulator()
        locks = LockTable(sim)
        for index, mode in enumerate(modes):
            event = locks.acquire("hot", mode, f"t{index}", float(index))
            assert event.triggered and event.ok
        assert locks.waits == 0
        assert locks.deadlock_aborts == 0
