"""Unit tests for workload generators and arrival processes."""

import pytest

from repro.errors import ReproError
from repro.sim import RngRegistry
from repro.txn import ReadOp, WriteOp
from repro.workloads import (
    RecordingConfig,
    RecordingWorkload,
    balance_key,
    hospital_workload,
    log_key,
    poisson_arrivals,
    retail_workload,
    telecom_workload,
    uniform_arrivals,
)

NODES = ["n0", "n1", "n2", "n3"]


@pytest.fixture
def workload():
    config = RecordingConfig(nodes=NODES, entities=10, span=2,
                             amount_mode="bitmask")
    return RecordingWorkload(config, RngRegistry(5))


class TestArrivals:
    def test_poisson_rate_roughly_respected(self):
        rngs = RngRegistry(1)
        times = poisson_arrivals(rngs, "s", rate=10.0, duration=100.0)
        assert 800 < len(times) < 1200
        assert all(0 <= t < 100.0 for t in times)
        assert times == sorted(times)

    def test_poisson_zero_rate(self):
        assert poisson_arrivals(RngRegistry(1), "s", 0.0, 10.0) == []

    def test_poisson_deterministic_per_seed(self):
        a = poisson_arrivals(RngRegistry(3), "s", 5.0, 10.0)
        b = poisson_arrivals(RngRegistry(3), "s", 5.0, 10.0)
        assert a == b

    def test_poisson_streams_independent(self):
        rngs = RngRegistry(3)
        a = poisson_arrivals(rngs, "s1", 5.0, 10.0)
        b = poisson_arrivals(rngs, "s2", 5.0, 10.0)
        assert a != b

    def test_uniform_arrivals_spacing(self):
        times = uniform_arrivals(rate=2.0, duration=3.0)
        assert times == [0.5, 1.0, 1.5, 2.0, 2.5]


class TestRecordingWorkload:
    def test_entity_placement_spans_requested_nodes(self, workload):
        for entity, nodes in workload.entity_nodes.items():
            assert len(nodes) == 2
            assert len(set(nodes)) == 2
            assert set(nodes) <= set(NODES)

    def test_recording_txn_touches_all_entity_nodes(self, workload):
        spec = workload.make_recording(0)
        entity, _amount = workload.update_amounts["rec-0"]
        assert spec.nodes == set(workload.entity_nodes[entity])
        assert spec.is_well_behaved and not spec.is_read_only

    def test_recording_amounts_are_distinct_bits(self, workload):
        masks = {}
        for index in range(30):
            workload.make_recording(index)
        for name, (entity, amount) in workload.update_amounts.items():
            assert amount & (amount - 1) == 0  # power of two
            assert amount not in masks.get(entity, set())
            masks.setdefault(entity, set()).add(amount)

    def test_money_mode_amounts_in_range(self):
        config = RecordingConfig(nodes=NODES, entities=5, span=2,
                                 amount_mode="money",
                                 charge_low=10.0, charge_high=20.0)
        workload = RecordingWorkload(config, RngRegistry(1))
        for index in range(20):
            workload.make_recording(index)
        for _entity, amount in workload.update_amounts.values():
            assert 10.0 <= amount <= 20.0

    def test_inquiry_reads_balance_everywhere(self, workload):
        spec = workload.make_inquiry(0)
        entity = workload.entity_of_inquiry(spec.name)
        assert spec.is_read_only
        assert spec.nodes == set(workload.entity_nodes[entity])
        for sub in spec.root.walk():
            assert all(isinstance(op, ReadOp) for op in sub.ops)
            assert all(op.key == balance_key(entity) for op in sub.ops)

    def test_audit_reads_many_entities(self, workload):
        spec = workload.make_audit(0)
        keys = {op.key for sub in spec.root.walk() for op in sub.ops}
        assert len(keys) == workload.config.audit_entities

    def test_correction_is_non_commuting(self, workload):
        spec = workload.make_correction(0, value=42)
        assert not spec.is_well_behaved
        for sub in spec.root.walk():
            for op in sub.ops:
                assert isinstance(op, WriteOp)
                assert op.operation.value == 42

    def test_abort_fraction_marks_some_txns(self):
        config = RecordingConfig(nodes=NODES, entities=10, span=2,
                                 abort_fraction=0.5)
        workload = RecordingWorkload(config, RngRegistry(2))
        flagged = sum(
            workload.make_recording(index).wants_abort for index in range(40)
        )
        assert 5 < flagged < 35

    def test_install_loads_all_entities(self, workload):
        class FakeSystem:
            def __init__(self):
                self.loaded = []

            def load(self, node, key, value, version=0):
                self.loaded.append((node, key, value))

        system = FakeSystem()
        workload.install(system)
        assert len(system.loaded) == 10 * 2 * 2  # entities * span * 2 keys
        keys = {key for _node, key, _value in system.loaded}
        assert balance_key(0) in keys
        assert log_key(0) in keys

    def test_committed_mask_respects_versions(self, workload):
        from repro.txn import History, TxnKind

        workload.make_recording(0)
        workload.make_recording(1)
        history = History()
        (e0, a0) = workload.update_amounts["rec-0"]
        (e1, a1) = workload.update_amounts["rec-1"]
        history.begin_txn("rec-0", TxnKind.UPDATE, 1, 0.0, "n0")
        history.begin_txn("rec-1", TxnKind.UPDATE, 2, 0.0, "n0")
        if e0 == e1:
            assert workload.committed_mask(history, e0, max_version=1) == a0
            assert workload.committed_mask(history, e0, max_version=2) == a0 | a1
        else:
            assert workload.committed_mask(history, e0, max_version=2) == a0
            assert workload.committed_mask(history, e1, max_version=2) == a1

    def test_aborted_txns_excluded_from_mask(self, workload):
        from repro.txn import History, TxnKind

        workload.make_recording(0)
        history = History()
        entity, _amount = workload.update_amounts["rec-0"]
        history.begin_txn("rec-0", TxnKind.UPDATE, 1, 0.0, "n0")
        history.aborted("rec-0", 1.0)
        assert workload.committed_mask(history, entity) == 0

    def test_invalid_span_rejected(self):
        with pytest.raises(ReproError):
            RecordingConfig(nodes=NODES, span=9)

    def test_invalid_amount_mode_rejected(self):
        with pytest.raises(ReproError):
            RecordingConfig(nodes=NODES, amount_mode="bitcoin")


class TestDomainWorkloads:
    def test_hospital_vocabulary(self):
        workload = hospital_workload(patients=20, seed=3)
        visit = workload.make_visit(0)
        inquiry = workload.make_balance_inquiry(1)
        statement = workload.make_statement_run(2)
        adjustment = workload.make_billing_adjustment(3, value=0)
        assert visit.is_well_behaved and not visit.is_read_only
        assert inquiry.is_read_only
        assert statement.is_read_only
        assert not adjustment.is_well_behaved
        patient = workload.entity_of_inquiry(inquiry.name)
        assert workload.patient_departments(patient)

    def test_telecom_shape(self):
        workload = telecom_workload(switches=8, accounts=100, seed=3)
        call = workload.make_call(0)
        assert len(call.nodes) == 2
        assert all(node.startswith("sw") for node in call.nodes)

    def test_retail_shape(self):
        workload = retail_workload(stores=6, products=50, seed=3)
        sale = workload.make_sale(0)
        stock_take = workload.make_stock_take(1, counted=77)
        assert len(sale.nodes) == 3
        assert not stock_take.is_well_behaved
