"""Uniform cross-protocol tests on the shared runtime.

Every protocol runs on the same :class:`repro.runtime.ProtocolNode`, so
properties of the *mechanism* — surviving non-FIFO message delivery,
compensation racing its own transaction, the facade surface — must hold
for every registered protocol.  These tests parameterize directly over
:data:`repro.runtime.PROTOCOLS` so a newly registered protocol is covered
automatically.
"""

import inspect

import pytest

from repro.errors import ReproError
from repro.net import LinkLatency, UniformLatency
from repro.runtime import PROTOCOLS, ProtocolRegistry, System
from repro.sim import Constant, Uniform
from repro.storage import Increment
from repro.txn import SubtxnSpec, TransactionSpec, WriteOp
from repro.workloads import build_system

ALL_PROTOCOLS = tuple(PROTOCOLS)
#: Protocols using the runtime's compensation path (2PC rolls back from
#: undo logs inside its commit protocol instead).
COMPENSATING = tuple(p for p in ALL_PROTOCOLS if p != "2pc")

NODES = ["p", "q", "r"]


def spanning_update(name, suffix=""):
    """One increment per node, on transaction-private keys."""
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p", ops=[WriteOp(f"x:{name}{suffix}", Increment(1))],
            children=[
                SubtxnSpec(node="q", ops=[WriteOp(f"y:{name}{suffix}", Increment(1))]),
                SubtxnSpec(node="r", ops=[WriteOp(f"z:{name}{suffix}", Increment(1))]),
            ],
        ),
    )


def record_link_traffic(system):
    """Wrap ``network.send`` to collect every in-flight envelope.

    ``delivered_at`` is stamped on delivery, so inspect the log only
    after the run has drained.
    """
    log = []
    original = system.network.send

    def recording_send(src, dst, kind, payload=None):
        message = original(src, dst, kind, payload)
        log.append(message)
        return message

    system.network.send = recording_send
    return log


def count_overtakes(log):
    """Messages delivered before an earlier-sent message on the same link."""
    overtakes = 0
    by_link = {}
    for message in log:
        if message.delivered_at is None:
            continue
        link = (message.src, message.dst)
        for earlier_sent, earlier_delivered in by_link.get(link, ()):
            if (message.sent_at > earlier_sent
                    and message.delivered_at < earlier_delivered):
                overtakes += 1
                break
        by_link.setdefault(link, []).append(
            (message.sent_at, message.delivered_at)
        )
    return overtakes


class TestNonFifoReordering:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_all_transactions_complete_under_heavy_jitter(self, protocol):
        """With latencies jittered 100x, messages genuinely overtake each
        other on every link — and every protocol must still drive all
        transactions to global completion with no aborts (the keys are
        transaction-private, so there is nothing to conflict on)."""
        system = build_system(
            protocol, NODES, seed=7,
            latency=UniformLatency(Uniform(0.1, 10.0)),
        )
        log = record_link_traffic(system)
        names = [f"t{index}" for index in range(8)]
        for index, name in enumerate(names):
            system.submit_at(0.25 * index, spanning_update(name))
        system.run(until=8.0)
        system.stop_policy()
        system.run_until_quiet(limit=10000.0)

        assert count_overtakes(log) > 0, "jitter produced no reordering"
        for name in names:
            record = system.history.txn(name)
            assert not record.aborted
            assert record.global_complete_time is not None

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_stores_converge_under_reordering(self, protocol):
        """Once quiet, the latest copy of every touched key holds the
        transaction's increment, whatever order the writes landed in."""
        system = build_system(
            protocol, NODES, seed=11,
            latency=UniformLatency(Uniform(0.1, 10.0)),
        )
        names = [f"u{index}" for index in range(6)]
        for index, name in enumerate(names):
            system.submit_at(0.3 * index, spanning_update(name))
        system.run(until=8.0)
        system.stop_policy()
        system.run_until_quiet(limit=10000.0)
        for name in names:
            for node, prefix in (("p", "x"), ("q", "y"), ("r", "z")):
                store = system.node(node).store
                key = f"{prefix}:{name}"
                assert store.read_max_leq(key, 10 ** 9) == 1, (
                    f"{protocol}: {key} lost its increment"
                )


class TestCompensationRacesItself:
    @pytest.mark.parametrize("protocol", COMPENSATING)
    def test_compensation_overtaking_original_leaves_no_residue(self, protocol):
        """An aborting sibling's compensation can overtake the victim
        subtransaction on a reordering link; the runtime's tombstone rule
        must suppress the victim on arrival, for every compensating
        protocol.  The race depends on each protocol's RNG consumption,
        so seeds are scanned until it fires at least once; the no-residue
        invariant must hold for *every* seed, raced or not."""
        overtook = 0
        for seed in range(12):
            system = build_system(
                protocol, ["p", "b", "c"], seed=seed,
                latency=LinkLatency(
                    links={("p", "c"): Uniform(1.0, 30.0)},  # reordering link
                    default=Constant(0.5),
                ),
            )
            system.load("p", "kp", 100)
            system.load("b", "kb", 100)
            system.load("c", "kc", 100)
            spec = TransactionSpec(
                name="t",
                root=SubtxnSpec(
                    node="p", ops=[WriteOp("kp", Increment(1))],
                    children=[
                        SubtxnSpec(node="b", ops=[WriteOp("kb", Increment(1))],
                                   abort_here=True),
                        SubtxnSpec(node="c", ops=[WriteOp("kc", Increment(1))]),
                    ],
                ),
            )
            system.submit(spec)
            system.run(until=60.0)
            system.stop_policy()
            system.run_until_quiet(limit=10000.0)

            record = system.history.txn("t")
            assert record.aborted and record.compensated
            assert record.global_complete_time is not None
            overtook += system.node("c").tombstones_created
            # No residue on any node, at any version.
            for node, key in (("p", "kp"), ("b", "kb"), ("c", "kc")):
                assert system.node(node).store.read_max_leq(key, 10 ** 9) == 100
        assert overtook > 0, "no seed produced the overtake race"


class TestUniformFacade:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_uniform_driving_surface(self, protocol):
        system = build_system(protocol, NODES, seed=0)
        assert isinstance(system, System)
        quiet = inspect.signature(system.run_until_quiet)
        assert "limit" in quiet.parameters
        assert inspect.signature(system.stop_policy).parameters == {}
        system.stop_policy()
        system.run_until_quiet(limit=1000.0)


class TestProtocolRegistry:
    def test_registry_names_and_order(self):
        assert tuple(PROTOCOLS) == ("3v", "nocoord", "manual",
                                    "manual-sync", "2pc")
        assert PROTOCOLS.strict() == ("3v", "2pc")
        assert len(PROTOCOLS) == 5
        assert "3v" in PROTOCOLS and "blockchain" not in PROTOCOLS

    def test_unknown_protocol_raises(self):
        with pytest.raises(ReproError, match="unknown protocol"):
            PROTOCOLS["blockchain"]
        assert PROTOCOLS.get("blockchain") is None

    def test_reregistration_must_be_identical(self):
        registry = ProtocolRegistry()
        builder = lambda node_ids, **kw: None  # noqa: E731
        registry.register("x", builder, order=0, description="d")
        registry.register("x", builder, order=0, description="d")  # idempotent
        with pytest.raises(ReproError, match="registered twice"):
            registry.register("x", builder, order=1, description="d")

    def test_workloads_reexports_the_registry(self):
        import repro.runtime
        import repro.workloads

        assert repro.workloads.PROTOCOLS is repro.runtime.PROTOCOLS

    def test_exp_spec_derives_from_registry(self):
        from repro.exp import ExperimentSpec, known_protocols

        assert known_protocols() == tuple(PROTOCOLS)
        # Specs stay constructible with any protocol string; the name is
        # validated at *run* time (in the fleet worker), not construction.
        spec = ExperimentSpec("not-a-protocol", seed=1)
        assert spec.protocol == "not-a-protocol"
