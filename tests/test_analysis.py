"""Unit tests for the analysis package (metrics, oracles, report)."""

import pytest

from repro.analysis import (
    LatencySummary,
    Table,
    abort_rate,
    atomic_visibility_violations,
    audit,
    closed_at_from_history,
    committed_counts,
    fmt,
    latency_summary,
    max_remote_wait,
    percentile,
    staleness_summary,
    throughput,
    wait_summary,
)
from repro.txn import (
    AdvancementRecord,
    History,
    ReadEvent,
    TxnKind,
    WaitReason,
)


def make_history():
    history = History()
    for index in range(4):
        history.begin_txn(f"u{index}", TxnKind.UPDATE, 1, float(index), "a")
        history.locally_committed(f"u{index}", index + 1.0)
        history.globally_completed(f"u{index}", index + 2.0)
    history.begin_txn("r0", TxnKind.READ, 0, 10.0, "a")
    history.locally_committed("r0", 10.5)
    history.globally_completed("r0", 11.0)
    history.begin_txn("dead", TxnKind.UPDATE, 1, 0.0, "a")
    history.aborted("dead", 1.0)
    return history


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummaries:
    def test_latency_summary_local(self):
        summary = latency_summary(make_history(), kind=TxnKind.UPDATE)
        assert summary.count == 4
        assert summary.mean == 1.0
        assert summary.p50 == 1.0

    def test_latency_summary_global(self):
        summary = latency_summary(
            make_history(), kind=TxnKind.UPDATE, which="global"
        )
        assert summary.mean == 2.0

    def test_empty_summary(self):
        summary = LatencySummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_throughput_and_aborts(self):
        history = make_history()
        assert throughput(history, 10.0, kind=TxnKind.UPDATE) == 0.4
        assert throughput(history, 10.0) == 0.5
        assert abort_rate(history) == pytest.approx(1 / 6)
        with pytest.raises(ValueError):
            throughput(history, 0.0)

    def test_committed_counts(self):
        counts = committed_counts(make_history())
        assert counts == {"update": 4, "read": 1, "noncommuting": 0}

    def test_wait_summary_and_remote(self):
        history = make_history()
        history.waited("u0", WaitReason.LOCK, 2.0)
        history.waited("u1", WaitReason.REMOTE, 3.0)
        waits = wait_summary(history)
        assert waits == {"lock": 2.0, "remote": 3.0}
        assert max_remote_wait(history) == 3.0


class TestStaleness:
    def test_closed_at_derivation(self):
        history = History()
        record = AdvancementRecord(new_update_version=2, started=5.0)
        record.phase1_done = 6.0
        history.advancements.append(record)
        assert closed_at_from_history(history) == {0: 0.0, 1: 6.0}

    def test_staleness_of_reads(self):
        history = History()
        record = AdvancementRecord(new_update_version=2, started=5.0)
        record.phase1_done = 6.0
        history.advancements.append(record)
        history.begin_txn("r1", TxnKind.READ, 1, 10.0, "a")
        history.locally_committed("r1", 10.1)
        history.globally_completed("r1", 10.1)
        summary = staleness_summary(history)
        assert summary.count == 1
        assert summary.mean == pytest.approx(4.0)  # 10.0 - 6.0

    def test_open_version_reads_are_fresh(self):
        history = History()
        history.begin_txn("r1", TxnKind.READ, 3, 10.0, "a")
        history.globally_completed("r1", 10.1)
        assert staleness_summary(history).mean == 0.0


class TestOracles:
    def _fractured_history(self):
        history = History()
        history.begin_txn("q", TxnKind.READ, 0, 0.0, "a")
        history.globally_completed("q", 1.0)
        history.read(ReadEvent(0.5, "q", "q", "a", "bal:1", 0, 0, 3))
        history.read(ReadEvent(0.6, "q", "q", "b", "bal:1", 0, 0, 1))
        return history

    def test_fracture_detected(self):
        violations = atomic_visibility_violations(self._fractured_history())
        assert len(violations) == 1
        assert violations[0].kind == "fractured-read"
        assert violations[0].txn == "q"

    def test_consistent_reads_pass(self):
        history = History()
        history.begin_txn("q", TxnKind.READ, 0, 0.0, "a")
        history.globally_completed("q", 1.0)
        history.read(ReadEvent(0.5, "q", "q", "a", "bal:1", 0, 0, 3))
        history.read(ReadEvent(0.6, "q", "q", "b", "bal:1", 0, 0, 3))
        assert atomic_visibility_violations(history) == []

    def test_aborted_reads_ignored(self):
        history = self._fractured_history()
        history.aborted("q", 2.0)
        assert atomic_visibility_violations(history) == []

    def test_update_reads_ignored(self):
        """Only read-only transactions are held to snapshot semantics —
        an update transaction legitimately sees in-progress same-version
        state."""
        history = History()
        history.begin_txn("u", TxnKind.UPDATE, 1, 0.0, "a")
        history.globally_completed("u", 1.0)
        history.read(ReadEvent(0.5, "u", "u", "a", "bal:1", 1, 1, 3))
        history.read(ReadEvent(0.6, "u", "u", "b", "bal:1", 1, 1, 1))
        assert atomic_visibility_violations(history) == []

    def test_float_drift_is_not_fractured(self):
        """Money amounts summed in different per-node orders drift by
        ULPs; that is float non-associativity, not a fractured read."""
        history = History()
        history.begin_txn("q", TxnKind.READ, 0, 0.0, "a")
        history.globally_completed("q", 1.0)
        history.read(
            ReadEvent(0.5, "q", "q", "a", "bal:1", 0, 0, 21614.28))
        history.read(
            ReadEvent(0.6, "q", "q", "b", "bal:1", 0, 0,
                      21614.280000000002))
        assert atomic_visibility_violations(history) == []

    def test_real_money_fracture_still_detected(self):
        """A genuine fracture differs by whole update amounts — far past
        the drift tolerance."""
        history = History()
        history.begin_txn("q", TxnKind.READ, 0, 0.0, "a")
        history.globally_completed("q", 1.0)
        history.read(ReadEvent(0.5, "q", "q", "a", "bal:1", 0, 0, 100.00))
        history.read(ReadEvent(0.6, "q", "q", "b", "bal:1", 0, 0, 120.50))
        assert len(atomic_visibility_violations(history)) == 1

    def test_bitmask_ints_compared_exactly(self):
        from repro.analysis.serializability import effectively_distinct

        masks = [1 << 200, (1 << 200) | 1]
        assert len(effectively_distinct(masks)) == 2
        assert len(effectively_distinct([None, 0])) == 2

    def test_audit_requires_workload_for_snapshots(self):
        with pytest.raises(ValueError):
            audit(History(), check_snapshots=True)

    def test_audit_report_shape(self):
        report = audit(self._fractured_history())
        assert report.reads_checked == 1
        assert report.fractured_reads == 1
        assert not report.clean
        assert report.fractured_rate == 1.0


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("My Experiment", ["system", "rate", "ok"])
        table.add("3v", 12.3456, True)
        table.add("2pc", 1.2, False)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "My Experiment"
        assert "system" in lines[2]
        assert "12.346" in text
        assert "yes" in text and "no" in text

    def test_table_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_fmt(self):
        assert fmt(1.23456) == "1.235"
        assert fmt(True) == "yes"
        assert fmt("plain") == "plain"
        assert fmt(7) == "7"
