"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--duration", "8", "--nodes", "3", "--update-rate", "3",
        "--inquiry-rate", "2", "--entities", "10"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quantum"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "3v"])
        assert args.nodes == 4
        assert args.duration == 30.0
        assert args.period == 10.0


class TestRun:
    def test_run_3v_clean_exit(self, capsys):
        assert main(["run", "3v"] + FAST) == 0
        out = capsys.readouterr().out
        assert "audit: clean" in out
        assert "3v" in out

    def test_run_nocoord_reports_metrics(self, capsys):
        # no-coordination may or may not fracture at this scale; the CLI
        # only fails on an audit failure for protocols that promise
        # consistency, which nocoord does not.
        code = main(["run", "nocoord"] + FAST)
        out = capsys.readouterr().out
        assert "upd/s" in out
        assert code in (0, 1)

    def test_run_with_corrections(self, capsys):
        assert main(["run", "3v", "--correction-rate", "0.5"] + FAST) == 0


class TestCompare:
    def test_compare_default_protocols(self, capsys):
        assert main(["compare"] + FAST) == 0
        out = capsys.readouterr().out
        for protocol in ("3v", "nocoord", "manual", "2pc"):
            assert protocol in out

    def test_compare_subset(self, capsys):
        assert main(["compare", "3v", "2pc"] + FAST) == 0


class TestSweep:
    def test_sweep_nodes(self, capsys):
        assert main(["sweep", "3v", "nodes", "2", "4"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Sweep of nodes" in out

    def test_sweep_period(self, capsys):
        assert main(["sweep", "3v", "period", "5", "20"] + FAST) == 0


class TestPaper:
    def test_paper_replay_matches(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "matches Figure 2: yes" in out
        assert "dual write" in out
