"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--duration", "8", "--nodes", "3", "--update-rate", "3",
        "--inquiry-rate", "2", "--entities", "10"]

#: For fleet commands: keep tests from writing to the repo's cache dir.
FLEET_FAST = FAST + ["--no-cache"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quantum"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "3v"])
        assert args.nodes == 4
        assert args.duration == 30.0
        assert args.period == 10.0


class TestRun:
    def test_run_3v_clean_exit(self, capsys):
        assert main(["run", "3v"] + FAST) == 0
        out = capsys.readouterr().out
        assert "audit: clean" in out
        assert "3v" in out

    def test_run_nocoord_reports_metrics(self, capsys):
        # no-coordination may or may not fracture at this scale; the CLI
        # only fails on an audit failure for protocols that promise
        # consistency, which nocoord does not.
        code = main(["run", "nocoord"] + FAST)
        out = capsys.readouterr().out
        assert "upd/s" in out
        assert code in (0, 1)

    def test_run_with_corrections(self, capsys):
        assert main(["run", "3v", "--correction-rate", "0.5"] + FAST) == 0


class TestCompare:
    def test_compare_default_protocols(self, capsys):
        assert main(["compare"] + FLEET_FAST) == 0
        out = capsys.readouterr().out
        for protocol in ("3v", "nocoord", "manual", "2pc"):
            assert protocol in out

    def test_compare_subset(self, capsys):
        assert main(["compare", "3v", "2pc"] + FLEET_FAST) == 0

    def test_compare_with_reps(self, capsys):
        assert main(["compare", "3v", "--reps", "2"] + FLEET_FAST) == 0
        out = capsys.readouterr().out
        assert "2 reps" in out


class TestSweep:
    def test_sweep_nodes_renders_exact_ints(self, capsys):
        assert main(["sweep", "3v", "nodes", "2", "4"] + FLEET_FAST) == 0
        out = capsys.readouterr().out
        assert "Sweep of nodes" in out
        # Integer parameters stay exact ints, never "2.0" / "4.0".
        cells = [line.split()[0] for line in out.splitlines()
                 if line and line.split()[0].replace(".", "").isdigit()]
        assert "2" in cells and "4" in cells
        assert "2.0" not in cells and "4.0" not in cells

    def test_sweep_period(self, capsys):
        assert main(["sweep", "3v", "period", "5", "20"] + FLEET_FAST) == 0

    def test_sweep_any_registered_parameter(self, capsys):
        assert main(
            ["sweep", "3v", "update-rate", "2", "4"] + FLEET_FAST) == 0
        out = capsys.readouterr().out
        assert "Sweep of update-rate" in out

    def test_sweep_rejects_fractional_int_parameter(self, capsys):
        assert main(["sweep", "3v", "entities", "2.5"] + FLEET_FAST) == 2
        assert "int" in capsys.readouterr().out

    def test_sweep_does_not_mutate_defaults_across_values(self, capsys):
        # The old CLI mutated one shared namespace per swept value; a
        # sweep of span must leave nodes at its flag value for every task.
        assert main(["sweep", "3v", "span", "1", "2"] + FLEET_FAST) == 0
        out = capsys.readouterr().out
        assert "Sweep of span" in out


class TestGrid:
    def test_grid_protocol_by_nodes(self, capsys):
        assert main(["grid", "3v", "nocoord", "--vary", "nodes=2,3",
                     "--reps", "2"] + FLEET_FAST) == 0
        out = capsys.readouterr().out
        assert "Grid: 4 cells x 2 reps" in out

    def test_grid_rejects_unknown_parameter(self, capsys):
        assert main(["grid", "3v", "--vary", "quantumness=1,2"]
                    + FLEET_FAST) == 2
        assert "unknown parameter" in capsys.readouterr().out

    def test_grid_cached_rerun_is_identical(self, capsys, tmp_path):
        argv = ["grid", "3v", "--vary", "nodes=2,3",
                "--cache-dir", str(tmp_path)] + FAST
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestPaper:
    def test_paper_replay_matches(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "matches Figure 2: yes" in out
        assert "dual write" in out
