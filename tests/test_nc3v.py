"""Integration tests for the NC3V extension (Section 5)."""

import pytest

from repro.core import ThreeVSystem
from repro.net import LinkLatency, constant_latency
from repro.sim import Constant
from repro.storage import Assign, Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, TxnKind, WriteOp


def nc_system(**kwargs):
    kwargs.setdefault("latency", constant_latency(1.0))
    system = ThreeVSystem(["p", "q"], seed=7, allow_noncommuting=True, **kwargs)
    system.load("p", "x", 100)
    system.load("q", "y", 200)
    return system


def nc_assign(name, x_value=1, with_child=False, y_value=2):
    children = []
    if with_child:
        children = [SubtxnSpec(node="q", ops=[WriteOp("y", Assign(y_value))])]
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(node="p", ops=[WriteOp("x", Assign(x_value))],
                        children=children),
    )


def wb_update(name, delta=10):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(delta))]),
    )


class TestBasicNC:
    def test_single_node_assign_commits(self):
        system = nc_system()
        system.submit(nc_assign("k1", x_value=555))
        system.run_until_quiet()
        record = system.history.txn("k1")
        assert record.kind == TxnKind.NONCOMMUTING
        assert not record.aborted
        assert system.node("p").store.get_exact("x", 1) == 555

    def test_distributed_assign_commits_via_2pc(self):
        system = nc_system()
        system.submit(nc_assign("k1", x_value=5, with_child=True, y_value=6))
        system.run_until_quiet()
        assert not system.history.txn("k1").aborted
        assert system.node("p").store.get_exact("x", 1) == 5
        assert system.node("q").store.get_exact("y", 1) == 6
        # 2PC control traffic happened.
        assert system.network.stats.commit_messages > 0

    def test_nc_has_remote_wait_wb_does_not(self):
        system = nc_system()
        system.submit(nc_assign("k1", with_child=True))
        system.submit(wb_update("w1"))
        system.run_until_quiet()
        assert system.history.txn("k1").remote_wait > 0.0
        assert system.history.txn("w1").remote_wait == 0.0

    def test_two_nc_txns_serialize(self):
        system = nc_system()
        system.submit_at(1.0, nc_assign("first", x_value=1))
        system.submit_at(1.0, nc_assign("second", x_value=2))
        system.run_until_quiet()
        survivors = [
            r for r in system.history.txns.values() if not r.aborted
        ]
        # Both may commit (serialized) or the younger may die; either way
        # the final value is one of the assigned ones, not a mash-up.
        assert system.node("p").store.get_exact("x", 1) in (1, 2)
        assert len(survivors) >= 1

    def test_advancement_still_works_with_nc_traffic(self):
        system = nc_system()
        system.submit(nc_assign("k1", x_value=7))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1
        assert system.value_at("p", "x") == 7


class TestMixing:
    def test_wb_update_waits_for_nc_lock(self):
        """A commuting update conflicts with an NC writer's NW lock —
        performance suffers only when non-commuting work is present."""
        system = nc_system(latency=constant_latency(4.0))
        # NC txn with a remote child holds its NW lock on x for the whole
        # 2PC (several 4.0 hops).
        system.submit_at(1.0, nc_assign("k1", with_child=True))
        system.submit_at(2.0, wb_update("w1"))
        system.run_until_quiet()
        w1 = system.history.txn("w1")
        assert not w1.aborted
        assert w1.waits.get("lock", 0.0) > 0.0
        # Serialization: the increment landed on top of the assign.
        assert system.node("p").store.get_exact("x", 1) == 11

    def test_pure_wb_traffic_never_lock_waits(self):
        system = nc_system()
        for k in range(20):
            system.submit_at(0.1 * k, wb_update(f"w{k}", delta=1))
        system.run_until_quiet()
        for k in range(20):
            assert system.history.txn(f"w{k}").waits.get("lock", 0.0) == 0.0
        assert system.node("p").store.get_exact("x", 1) == 120

    def test_read_only_txns_take_no_locks(self):
        system = nc_system(latency=constant_latency(4.0))
        system.submit_at(1.0, nc_assign("k1", with_child=True))
        reader = TransactionSpec(
            name="r1", root=SubtxnSpec(node="p", ops=[ReadOp("x")])
        )
        system.submit_at(2.0, reader)
        system.run_until_quiet()
        r1 = system.history.txn("r1")
        assert r1.total_wait == 0.0
        assert r1.reads == [("x", 100)]  # version 0, untouched by the NC txn


class TestVersionGate:
    def test_nc_gated_during_advancement(self):
        """An NC root arriving between phases 1 and 3 sees vu == vr + 2
        and must wait for the read-version switch."""
        system = nc_system(
            latency=LinkLatency(
                links={("coordinator", "p"): Constant(0.5),
                       ("coordinator", "q"): Constant(0.5)},
                default=Constant(1.0),
            ),
            poll_interval=2.0,
        )
        system.sim.schedule(1.0, system.advance_versions)
        # Phase 1 completes ~2.0; phase 2 poll delays phase 3 past 3.0.
        system.submit_at(2.2, nc_assign("gated", x_value=9))
        system.run_until_quiet()
        record = system.history.txn("gated")
        assert not record.aborted
        assert record.version == 2
        assert record.waits.get("version-gate", 0.0) > 0.0
        assert system.node("p").store.get_exact("x", 2) == 9

    def test_nc_not_gated_in_steady_state(self):
        system = nc_system()
        system.submit(nc_assign("k1"))
        system.run_until_quiet()
        assert system.history.txn("k1").waits.get("version-gate", 0.0) == 0.0


class TestVersionConflictAbort:
    def test_straggler_nc_child_aborts_on_newer_version(self):
        """An NC child (version 1) arrives at q after an advancement let a
        well-behaved transaction write y(2): step 4 aborts the NC
        transaction, and its root write is rolled back at p."""
        system = ThreeVSystem(
            ["p", "q"], seed=7, allow_noncommuting=True,
            latency=LinkLatency(
                links={("p", "q"): Constant(15.0)},
                default=Constant(1.0),
            ),
        )
        system.load("p", "x", 100)
        system.load("q", "y", 200)
        system.submit_at(1.0, nc_assign("K", x_value=9, with_child=True))
        system.sim.schedule(2.0, system.advance_versions)
        wb_at_q = TransactionSpec(
            name="w2",
            root=SubtxnSpec(node="q", ops=[WriteOp("y", Increment(5))]),
        )
        system.submit_at(6.0, wb_at_q)  # version 2 write creates y(2)
        system.run_until_quiet()
        record = system.history.txn("K")
        assert record.aborted
        # Root's assign rolled back: x(1) restored to the copied base.
        assert system.node("p").store.get_exact("x", 1) == 100
        # The well-behaved write survived.
        assert system.node("q").store.get_exact("y", 2) == 205
        assert system.node("p").nc3v.aborts_version_conflict == 0
        assert system.node("q").nc3v.aborts_version_conflict == 1

    def test_counters_converge_after_nc_abort(self):
        system = ThreeVSystem(
            ["p", "q"], seed=7, allow_noncommuting=True,
            latency=LinkLatency(
                links={("p", "q"): Constant(15.0)},
                default=Constant(1.0),
            ),
        )
        system.load("p", "x", 100)
        system.load("q", "y", 200)
        system.submit_at(1.0, nc_assign("K", x_value=9, with_child=True))
        system.sim.schedule(2.0, system.advance_versions)
        system.run_until_quiet()
        assert system.read_version == 1  # advancement completed
        # A later advancement also completes (counters are clean).
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 2


class TestUnitRules:
    def test_exists_above_triggers_abort(self):
        """Direct check of the step-4 rule."""
        system = nc_system()
        system.node("p").store.ensure_version("x", 5)
        system.submit(nc_assign("K", x_value=1))
        system.run_until_quiet()
        assert system.history.txn("K").aborted
        assert system.node("p").nc3v.aborts_version_conflict == 1

    def test_nc_txn_rejected_without_flag(self):
        from repro.errors import ProtocolError

        system = ThreeVSystem(["p", "q"], seed=1)
        with pytest.raises(ProtocolError):
            system.submit(nc_assign("K"))
