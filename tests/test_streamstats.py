"""Property tests for the streaming history's online aggregates.

The bounded-memory mode rests on three numerical claims, each checked
here against the exact materialized computation:

* while a population fits in the reservoir, ``StreamingStats.summary()``
  is *bit-identical* to ``LatencySummary.of`` over the full value list
  (the differential-oracle regime every small run exercises);
* the incremental ``ExactSum`` matches ``math.fsum`` exactly under any
  permutation of the inputs, so fold order can never perturb a mean;
* past the reservoir, the P² quantile estimators stay close to the exact
  percentiles on uniform, exponential, and Zipf-skewed populations.

Determinism rides along: a seeded reservoir fed the same stream twice is
identical, and streaming experiment summaries come out bit-for-bit the
same whether the fleet runs them serially or in spawned workers.
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp import ExperimentSpec, Fleet
from repro.txn.streamstats import (
    DEFAULT_RESERVOIR,
    ExactSum,
    LatencySummary,
    P2Quantile,
    ReservoirSample,
    StreamingStats,
    derived_rng,
    percentile,
)

#: Latency-like values: non-negative, finite, spanning several decades.
latencies = st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)


class TestExactSum:
    @given(st.lists(latencies, max_size=200), st.randoms())
    def test_matches_fsum_under_permutation(self, values, shuffler):
        """The sum depends on the multiset, never the order."""
        forward = ExactSum()
        for x in values:
            forward.add(x)
        shuffled = list(values)
        shuffler.shuffle(shuffled)
        backward = ExactSum()
        for x in shuffled:
            backward.add(x)
        expected = math.fsum(values)
        assert forward.value == expected
        assert backward.value == expected

    def test_catastrophic_cancellation_stays_exact(self):
        s = ExactSum()
        for x in (1e16, 1.0, -1e16):
            s.add(x)
        assert s.value == 1.0


class TestReservoir:
    @given(st.lists(latencies, min_size=1, max_size=150),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_exact_while_population_fits(self, values, seed):
        reservoir = ReservoirSample(capacity=150, rng=random.Random(seed))
        for x in values:
            reservoir.add(x)
        assert reservoir.exact
        assert reservoir.values == values

    def test_deterministic_for_a_fixed_seed(self):
        source = random.Random(5)
        stream = [source.uniform(0, 10) for _ in range(2000)]
        first = ReservoirSample(64, derived_rng(17, "stats.update"))
        second = ReservoirSample(64, derived_rng(17, "stats.update"))
        for x in stream:
            first.add(x)
            second.add(x)
        assert not first.exact
        assert first.values == second.values
        # A different named stream samples differently.
        other = ReservoirSample(64, derived_rng(17, "stats.read"))
        for x in stream:
            other.add(x)
        assert other.values != first.values

    def test_sample_is_roughly_uniform(self):
        """Every fifth of a 10k stream should land ~1/5 of a big sample."""
        reservoir = ReservoirSample(2048, derived_rng(3, "stats.update"))
        for i in range(10_000):
            reservoir.add(float(i))
        for fifth in range(5):
            share = sum(1 for v in reservoir.values
                        if fifth * 2000 <= v < (fifth + 1) * 2000)
            assert 0.12 < share / len(reservoir.values) < 0.28


class TestStreamingStatsExactRegime:
    @given(st.lists(latencies, max_size=300),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=50)
    def test_bit_identical_to_materialized_summary(self, values, seed):
        stats = StreamingStats(random.Random(seed), capacity=300)
        for x in values:
            stats.add(x)
        streamed = stats.summary()
        exact = LatencySummary.of(values)
        assert streamed == exact  # dataclass equality: every field exact


class TestP2Accuracy:
    """Past the reservoir, P² must track exact percentiles closely.

    Deterministic populations (seeded, n=50k) rather than Hypothesis:
    P² is an estimator with distribution-dependent error, so the claim
    is quantitative closeness on representative shapes, not identity on
    adversarial ones.
    """

    N = 50_000

    def populations(self):
        rng = random.Random(123)
        uniform = [rng.uniform(0.0, 100.0) for _ in range(self.N)]
        exponential = [rng.expovariate(1 / 8.0) for _ in range(self.N)]
        zipfish = [1.0 / (1.0 - rng.random()) ** 0.8 for _ in range(self.N)]
        return {"uniform": uniform, "exponential": exponential,
                "zipf": zipfish}

    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_close_to_exact_percentile(self, q):
        for name, values in self.populations().items():
            estimator = P2Quantile(q)
            for x in values:
                estimator.add(x)
            exact = percentile(values, q * 100.0)
            spread = percentile(values, 99.9) - percentile(values, 0.1)
            error = abs(estimator.estimate - exact)
            assert error <= 0.05 * spread, (
                f"P2({q}) off by {error:.4g} (>{0.05 * spread:.4g}) "
                f"on the {name} population: {estimator.estimate:.4g} "
                f"vs exact {exact:.4g}"
            )

    def test_estimate_stays_inside_observed_range(self):
        rng = random.Random(7)
        estimator = P2Quantile(0.95)
        lo, hi = float("inf"), float("-inf")
        for _ in range(5_000):
            x = rng.lognormvariate(0.0, 2.0)
            lo, hi = min(lo, x), max(hi, x)
            estimator.add(x)
        assert lo <= estimator.estimate <= hi

    def test_default_reservoir_hands_off_to_p2(self):
        stats = StreamingStats(derived_rng(0, "stats.update"))
        rng = random.Random(99)
        values = [rng.expovariate(1.0) for _ in range(3 * DEFAULT_RESERVOIR)]
        for x in values:
            stats.add(x)
        summary = stats.summary()
        assert summary.count == len(values)
        assert summary.mean == math.fsum(values) / len(values)
        assert summary.max == max(values)
        for attr, q in (("p50", 50), ("p95", 95), ("p99", 99)):
            exact = percentile(values, q)
            assert abs(getattr(summary, attr) - exact) <= 0.15 * exact


class TestStreamingFleetDeterminism:
    """Streaming summaries must be bit-identical across worker counts.

    Spawned fleet workers draw fresh hash seeds and interleave wall
    clocks, so any hidden order- or host-dependence in the streaming
    fold (reservoir RNG, P² marker updates, ExactSum partials) would
    show up here as a digest mismatch.
    """

    def specs(self):
        return [
            ExperimentSpec(protocol, nodes=3, duration=6.0, update_rate=4.0,
                           inquiry_rate=2.0, audit_rate=0.2, entities=10,
                           span=2, seed=seed, stream=1, zipf=0.7,
                           detail=True)
            for protocol in ("3v", "nocoord") for seed in (0, 1)
        ]

    def test_jobs1_vs_jobs4_identical(self):
        specs = self.specs()
        serial = Fleet(jobs=1).run(specs)
        parallel = Fleet(jobs=4).run(specs)
        masked = [dataclasses.replace(s, wall_seconds=0.0) for s in serial]
        assert masked == [dataclasses.replace(s, wall_seconds=0.0)
                          for s in parallel]
        assert ([s.determinism_digest() for s in serial]
                == [s.determinism_digest() for s in parallel])
