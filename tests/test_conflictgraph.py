"""Tests for the commutativity-aware serialization-graph checker."""

import pytest

from repro.analysis import (
    build_serialization_graph,
    equivalent_serial_order,
    is_conflict_serializable,
    serialization_cycles,
)
from repro.storage import Assign, Increment
from repro.txn import History, ReadEvent, TxnKind, WriteEvent


def history_with(events):
    """Build a detailed history from (kind, time, txn, node, key, op) rows."""
    history = History()
    for row in events:
        if row[2] not in history.txns:
            history.begin_txn(row[2], TxnKind.UPDATE, 0, 0.0, row[3])
            history.globally_completed(row[2], 99.0)
    for kind, time, txn, node, key, op in events:
        if kind == "r":
            history.read(ReadEvent(time, txn, txn, node, key, 0, 0, None))
        else:
            history.wrote(WriteEvent(time, txn, txn, node, key, 0, 1, op))
    return history


class TestSyntheticHistories:
    def test_commuting_writes_induce_no_edges(self):
        history = history_with([
            ("w", 1.0, "t1", "a", "x", Increment(1)),
            ("w", 2.0, "t2", "a", "x", Increment(2)),
        ])
        graph = build_serialization_graph(history)
        assert graph.number_of_edges() == 0
        assert is_conflict_serializable(history)

    def test_non_commuting_writes_induce_edge(self):
        history = history_with([
            ("w", 1.0, "t1", "a", "x", Assign(1)),
            ("w", 2.0, "t2", "a", "x", Assign(2)),
        ])
        graph = build_serialization_graph(history)
        assert graph.has_edge("t1", "t2")
        assert not graph.has_edge("t2", "t1")

    def test_read_write_conflicts_ordered_by_time(self):
        history = history_with([
            ("r", 1.0, "q", "a", "x", None),
            ("w", 2.0, "u", "a", "x", Increment(1)),
        ])
        graph = build_serialization_graph(history)
        assert graph.has_edge("q", "u")
        assert equivalent_serial_order(history) == ["q", "u"]

    def test_fractured_read_creates_cycle(self):
        """The reader sees x before u at node a, and y after u at node b:
        u -> reader -> u."""
        history = history_with([
            ("w", 1.0, "u", "b", "y", Increment(1)),
            ("r", 2.0, "q", "b", "y", None),   # u -> q
            ("r", 3.0, "q", "a", "x", None),
            ("w", 4.0, "u", "a", "x", Increment(1)),  # q -> u
        ])
        assert not is_conflict_serializable(history)
        cycles = serialization_cycles(history)
        assert any(set(cycle) == {"u", "q"} for cycle in cycles)
        with pytest.raises(Exception):
            equivalent_serial_order(history)

    def test_aborted_txns_excluded(self):
        history = history_with([
            ("w", 1.0, "dead", "a", "x", Assign(1)),
            ("w", 2.0, "t2", "a", "x", Assign(2)),
        ])
        history.aborted("dead", 3.0)
        graph = build_serialization_graph(history)
        assert list(graph.nodes) == ["t2"]

    def test_different_copies_do_not_conflict(self):
        """Writes to different versions of the same key touch different
        physical copies."""
        history = History()
        history.begin_txn("t1", TxnKind.UPDATE, 1, 0.0, "a")
        history.begin_txn("t2", TxnKind.UPDATE, 2, 0.0, "a")
        history.globally_completed("t1", 9.0)
        history.globally_completed("t2", 9.0)
        history.wrote(WriteEvent(1.0, "t1", "t1", "a", "x", 1, 1, Assign(1),
                                 versions=(1,)))
        history.wrote(WriteEvent(2.0, "t2", "t2", "a", "x", 2, 1, Assign(2),
                                 versions=(2,)))
        graph = build_serialization_graph(history)
        assert graph.number_of_edges() == 0

    def test_edge_witnesses_recorded(self):
        history = history_with([
            ("r", 1.0, "q", "a", "x", None),
            ("w", 2.0, "u", "a", "x", Increment(1)),
        ])
        graph = build_serialization_graph(history)
        witness = graph["q"]["u"]["witnesses"][0]
        assert witness.kinds == "rw"
        assert witness.key == "x"


class TestRealHistories:
    def test_3v_histories_are_conflict_serializable(self):
        from repro.workloads import run_recording_experiment

        result = run_recording_experiment(
            "3v", nodes=4, duration=20.0, update_rate=5.0, inquiry_rate=4.0,
            audit_rate=0.3, entities=10, span=3, seed=14,
        )
        assert is_conflict_serializable(result.history)

    def test_2pc_histories_are_conflict_serializable(self):
        from repro.workloads import run_recording_experiment

        result = run_recording_experiment(
            "2pc", nodes=4, duration=20.0, update_rate=5.0, inquiry_rate=4.0,
            audit_rate=0.3, entities=10, span=3, seed=14,
        )
        assert is_conflict_serializable(result.history)

    def test_nocoord_histories_are_not(self):
        from repro.workloads import run_recording_experiment

        result = run_recording_experiment(
            "nocoord", nodes=4, duration=30.0, update_rate=6.0,
            inquiry_rate=5.0, audit_rate=0.3, entities=8, span=3, seed=14,
        )
        cycles = serialization_cycles(result.history)
        assert cycles, "expected a serialization cycle under no coordination"

    def test_agrees_with_bitmask_oracle(self):
        """Cross-validation of the two instruments: on the same runs the
        graph checker and the bitmask oracle reach the same verdict."""
        from repro.analysis import audit
        from repro.workloads import run_recording_experiment

        for protocol, seed in (("3v", 3), ("nocoord", 3)):
            result = run_recording_experiment(
                protocol, nodes=4, duration=25.0, update_rate=6.0,
                inquiry_rate=5.0, audit_rate=0.2, entities=8, span=3,
                seed=seed,
            )
            oracle_clean = audit(result.history).clean
            graph_clean = is_conflict_serializable(result.history)
            assert oracle_clean == graph_clean, protocol
