"""Quiescence-detector ablation (experiment C7).

Under the paper's literal Section 4.1 semantics ("immediate" completion —
a subtransaction increments its completion counter as soon as it has
dispatched its children and committed), only the two-wave counter read is
sound.  These tests build the deterministic straggler scenario from
Section 2.2 — "a subtransaction running on version 1 on node p might have
sent a child subtransaction to node q and committed on node p; while the
child subtransaction is in transit, no server may be running any
transactions against version 1" — and show:

* the two-wave detector refuses to declare quiescence until the straggler
  chain lands;
* the interleaved single-pass read declares quiescence while the
  grandchild is still in flight (a new request slipped between its R and
  C waves);
* the naive active-transaction poll declares quiescence even earlier;
* as a consequence, both unsound detectors let Phase 3 expose a version
  that later mutates — observable as two same-version reads returning
  different values (a direct Theorem 4.1 violation).
"""

import pytest

from repro.core import NodeConfig, ThreeVSystem
from repro.net import LinkLatency
from repro.sim import Constant
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp


def straggler_system(detector: str, completion: str = "immediate"):
    """p -> q -> p transaction chain with a slow q->p leg."""
    system = ThreeVSystem(
        ["p", "q"],
        seed=0,
        latency=LinkLatency(
            links={
                ("p", "q"): Constant(4.5),  # child iq in transit 9.5->14.0
                ("q", "p"): Constant(5.0),  # grandchild in transit 14->19
            },
            default=Constant(1.0),  # coordinator links
        ),
        poll_interval=0.5,
        detector=detector,
        node_config=NodeConfig(completion=completion),
    )
    system.load("p", "A", 0)
    system.load("p", "B", 0)
    system.load("q", "D", 0)
    return system


def chain_txn():
    return TransactionSpec(
        name="i",
        root=SubtxnSpec(
            node="p",
            ops=[WriteOp("A", Increment(1))],
            children=[
                SubtxnSpec(
                    node="q",
                    label="q",
                    ops=[WriteOp("D", Increment(1))],
                    children=[
                        SubtxnSpec(
                            node="p",
                            label="p",
                            ops=[WriteOp("B", Increment(1))],
                        )
                    ],
                )
            ],
        ),
    )


def read_b(name):
    return TransactionSpec(
        name=name, root=SubtxnSpec(node="p", ops=[ReadOp("B")])
    )


def run_scenario(detector: str):
    system = straggler_system(detector)
    system.submit_at(9.5, chain_txn())
    system.sim.schedule(10.0, system.advance_versions)
    system.submit_at(17.5, read_b("early-read"))
    system.submit_at(30.0, read_b("late-read"))
    system.run_until_quiet()
    return system


def grandchild_write_time(system) -> float:
    return next(
        e.time for e in system.history.write_events if e.subtxn == "iqp"
    )


class TestTwoWaveIsSound:
    def test_phase2_waits_for_straggler_chain(self):
        system = run_scenario("two-wave")
        record = system.history.advancements[0]
        assert record.phase2_done >= grandchild_write_time(system)

    def test_same_version_reads_agree(self):
        system = run_scenario("two-wave")
        early = system.history.txn("early-read")
        late = system.history.txn("late-read")
        # Both read version 1; with a sound detector version 1 was frozen
        # before becoming readable, so they agree.
        if early.version == late.version:
            assert early.reads == late.reads

    def test_sound_under_hierarchical_completion_too(self):
        system = straggler_system("two-wave", completion="hierarchical")
        system.submit_at(9.5, chain_txn())
        system.sim.schedule(10.0, system.advance_versions)
        system.run_until_quiet()
        record = system.history.advancements[0]
        assert record.phase2_done >= grandchild_write_time(system)


class TestInterleavedIsUnsound:
    def test_declares_quiescence_with_grandchild_in_flight(self):
        system = run_scenario("interleaved")
        record = system.history.advancements[0]
        assert record.phase2_done < grandchild_write_time(system)

    def test_exposes_mutating_version_to_reads(self):
        system = run_scenario("interleaved")
        early = system.history.txn("early-read")
        late = system.history.txn("late-read")
        assert early.version == 1
        assert late.version == 1
        # Same version, different values: Theorem 4.1 violated.
        assert early.reads == [("B", 0)]
        assert late.reads == [("B", 1)]


class TestActivePollIsUnsound:
    def test_declares_quiescence_while_child_in_transit(self):
        system = run_scenario("active-poll")
        record = system.history.advancements[0]
        assert record.phase2_done < grandchild_write_time(system)

    def test_declares_even_before_child_lands_at_q(self):
        system = run_scenario("active-poll")
        record = system.history.advancements[0]
        iq_write = next(
            e.time for e in system.history.write_events if e.subtxn == "iq"
        )
        assert record.phase2_done < iq_write

    def test_sound_detector_costs_more_polls(self):
        sound = run_scenario("two-wave")
        naive = run_scenario("active-poll")
        assert (
            sound.history.advancements[0].counter_polls
            >= naive.history.advancements[0].counter_polls
        )


class TestUnknownDetector:
    def test_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            straggler_system("psychic")
