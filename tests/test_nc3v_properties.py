"""Property-based tests for NC3V under randomized mixed traffic.

The NC3V path (locks + gate + 2PC + rollback) is the most intricate part
of the implementation; these tests subject it to randomized latencies,
mixes, and advancement timing, and require: atomic visibility of every
committed transaction (including corrections), liveness (everything
terminates, counters converge), and zero lock traffic for read-only
transactions.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import atomic_visibility_violations
from repro.core import ThreeVSystem, check_all
from repro.net import UniformLatency
from repro.sim import RngRegistry, Uniform
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def mixed_params(draw):
    nodes = draw(st.integers(min_value=2, max_value=5))
    return {
        "nodes": nodes,
        "span": draw(st.integers(min_value=1, max_value=nodes)),
        "entities": draw(st.integers(min_value=2, max_value=8)),
        "seed": draw(st.integers(min_value=0, max_value=5000)),
        "latency_low": draw(st.floats(min_value=0.1, max_value=1.0)),
        "latency_spread": draw(st.floats(min_value=0.0, max_value=2.0)),
        "update_rate": draw(st.floats(min_value=1.0, max_value=5.0)),
        "correction_rate": draw(st.floats(min_value=0.2, max_value=2.0)),
        "inquiry_rate": draw(st.floats(min_value=0.5, max_value=3.0)),
        "advancements": draw(st.integers(min_value=0, max_value=2)),
    }


def run_mixed(params, duration=12.0):
    node_ids = [f"n{i}" for i in range(params["nodes"])]
    system = ThreeVSystem(
        node_ids, seed=params["seed"], allow_noncommuting=True,
        latency=UniformLatency(Uniform(
            params["latency_low"],
            params["latency_low"] + params["latency_spread"],
        )),
        poll_interval=0.5,
    )
    config = RecordingConfig(
        nodes=node_ids, entities=params["entities"], span=params["span"],
        amount_mode="bitmask",
    )
    workload = RecordingWorkload(config, RngRegistry(params["seed"] + 1))
    workload.install(system)
    arrivals = RngRegistry(params["seed"] + 2)
    drive(system,
          poisson_arrivals(arrivals, "u", params["update_rate"], duration),
          workload.make_recording)
    drive(system,
          poisson_arrivals(arrivals, "c", params["correction_rate"], duration),
          workload.make_correction)
    drive(system,
          poisson_arrivals(arrivals, "r", params["inquiry_rate"], duration),
          workload.make_inquiry)
    for k in range(params["advancements"]):
        at = duration * (k + 1) / (params["advancements"] + 1)
        system.sim.schedule(at, _try_advance, system)
    system.run(until=duration)
    system.run_until_quiet(limit=duration + 1_000_000)
    return system, workload


def _try_advance(system):
    from repro.errors import AdvancementInProgress

    try:
        system.advance_versions()
    except AdvancementInProgress:
        pass


class TestMixedTrafficProperties:
    @SLOW
    @given(mixed_params())
    def test_atomic_visibility_with_corrections(self, params):
        system, _workload = run_mixed(params)
        violations = atomic_visibility_violations(system.history)
        assert violations == [], violations[:3]

    @SLOW
    @given(mixed_params())
    def test_liveness_everything_terminates(self, params):
        system, _workload = run_mixed(params)
        for record in system.history.txns.values():
            assert record.global_complete_time is not None, record.name
        check_all(system)
        # Counters converge even through NC aborts: one more advancement.
        before = system.read_version
        system.advance_versions()
        system.run_until_quiet(limit=10_000_000)
        assert system.read_version == before + 1

    @SLOW
    @given(mixed_params())
    def test_reads_never_touch_locks(self, params):
        system, _workload = run_mixed(params)
        for record in system.history.committed_txns("read"):
            assert record.waits.get("lock", 0.0) == 0.0
            assert record.remote_wait == 0.0

    @SLOW
    @given(mixed_params())
    def test_version_bound_with_nc_traffic(self, params):
        system, _workload = run_mixed(params)
        for node in system.nodes.values():
            assert node.store.max_live_versions <= 3
