"""Integration tests for the three baseline systems."""

import pytest

from repro.baselines import ManualVersioningSystem, NoCoordSystem, TwoPCSystem
from repro.net import UniformLatency, constant_latency
from repro.sim import Uniform
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp


def visit(name, dx=10, dy=20, abort_at_q=False):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p",
            ops=[WriteOp("x", Increment(dx))],
            children=[
                SubtxnSpec(node="q", ops=[WriteOp("y", Increment(dy))],
                           abort_here=abort_at_q)
            ],
        ),
    )


def query(name):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="p",
            ops=[ReadOp("x")],
            children=[SubtxnSpec(node="q", ops=[ReadOp("y")])],
        ),
    )


def loaded(system):
    system.load("p", "x", 100)
    system.load("q", "y", 200)
    return system


class TestNoCoordination:
    def test_updates_apply_immediately(self):
        system = loaded(NoCoordSystem(["p", "q"], seed=1))
        system.submit(visit("t1"))
        system.run_until_quiet()
        assert system.value_at("p", "x") == 110
        assert system.value_at("q", "y") == 220

    def test_fractured_read_possible(self):
        """A query racing a multi-node update can see only part of it —
        the paper's motivating anomaly.  The query's root runs at q before
        t1's child arrives there, but its own child reaches p after t1's
        root wrote x."""
        audit = TransactionSpec(
            name="audit",
            root=SubtxnSpec(
                node="q",
                ops=[ReadOp("y")],
                children=[SubtxnSpec(node="p", ops=[ReadOp("x")])],
            ),
        )
        system = loaded(
            NoCoordSystem(["p", "q"], seed=1, latency=constant_latency(5.0))
        )
        system.submit_at(1.0, visit("t1"))
        system.submit_at(1.5, audit)
        system.run_until_quiet()
        values = dict(system.history.txn("audit").reads)
        assert values["y"] == 200  # missed the child's write at q
        assert values["x"] == 110  # but saw the root's write at p: fractured

    def test_compensation_works_without_versions(self):
        system = loaded(NoCoordSystem(["p", "q"], seed=1))
        system.submit(visit("bad", abort_at_q=True))
        system.run_until_quiet()
        assert system.value_at("p", "x") == 100
        assert system.value_at("q", "y") == 200
        assert system.history.txn("bad").aborted


class TestManualVersioning:
    def test_reads_lag_by_the_period(self):
        system = loaded(
            ManualVersioningSystem(["p", "q"], period=100.0, safety_delay=20.0,
                                   seed=1)
        )
        system.submit_at(1.0, visit("t1"))
        system.submit_at(50.0, query("early"))  # before first switch
        system.submit_at(130.0, query("late"))  # after switch + delay
        system.run(until=200.0)
        system.stop_policy()
        system.run_until_quiet()
        early = dict(system.history.txn("early").reads)
        late = dict(system.history.txn("late").reads)
        assert early == {"x": 100, "y": 200}  # stale version 0
        assert late == {"x": 110, "y": 220}  # version 1 readable at 120

    def test_short_safety_delay_misses_straggler(self):
        """The January-31 failure: a transaction still in flight when the
        version becomes readable is only partially visible to readers."""
        from repro.net import LinkLatency
        from repro.sim import Constant

        system = loaded(
            ManualVersioningSystem(
                ["p", "q"], period=10.0, safety_delay=1.5, seed=1,
                latency=LinkLatency(
                    links={("p", "q"): Constant(12.0)},  # slow child hop
                    default=Constant(1.0),
                ),
            )
        )
        # Root writes x(1) at t=9.5; the child is in flight until t=21.5.
        # The switch at t=10 makes version 1 readable at t=11.5 + 1 hop,
        # long before the child lands.
        system.submit_at(9.5, visit("t1"))
        bill = TransactionSpec(
            name="bill",
            root=SubtxnSpec(
                node="q",
                ops=[ReadOp("y")],
                children=[SubtxnSpec(node="p", ops=[ReadOp("x")])],
            ),
        )
        system.submit_at(14.0, bill)
        system.run(until=60.0)
        system.stop_policy()
        system.run_until_quiet()
        values = dict(system.history.txn("bill").reads)
        # The bill sees the root's charge but not the child's: fractured.
        assert system.history.txn("bill").version == 1
        assert values["x"] == 110
        assert values["y"] == 200

    def test_synchronous_switch_blocks_new_roots(self):
        system = loaded(
            ManualVersioningSystem(
                ["p", "q"], period=10.0, synchronous=True, seed=1,
                latency=constant_latency(1.0),
            )
        )
        # A long stream of updates keeps the system busy; a root arriving
        # just after the freeze waits for the drain.
        for k in range(12):
            system.submit_at(0.5 + k, visit(f"u{k}"))
        system.run(until=60.0)
        system.stop_policy()
        system.run_until_quiet()
        waits = [
            system.history.txn(f"u{k}").waits.get("advancement", 0.0)
            for k in range(12)
        ]
        assert max(waits) > 0.0, "some root should have been frozen out"

    def test_synchronous_switch_is_consistent(self):
        system = loaded(
            ManualVersioningSystem(
                ["p", "q"], period=15.0, synchronous=True, seed=1,
                latency=constant_latency(2.0),
            )
        )
        system.submit_at(1.0, visit("t1"))
        system.submit_at(20.0, query("audit"))
        system.run(until=50.0)
        system.stop_policy()
        system.run_until_quiet()
        audit = dict(system.history.txn("audit").reads)
        assert audit in ({"x": 100, "y": 200}, {"x": 110, "y": 220})


class TestTwoPC:
    def test_committed_update_applies_everywhere(self):
        system = loaded(TwoPCSystem(["p", "q"], seed=1))
        system.submit(visit("t1"))
        system.run_until_quiet()
        assert system.value_at("p", "x") == 110
        assert system.value_at("q", "y") == 220
        record = system.history.txn("t1")
        assert not record.aborted
        assert record.global_complete_time is not None

    def test_reads_are_blocked_by_writers(self):
        """2PL: the query waits for the update's locks — the schedule the
        paper says global synchronization forbids."""
        system = loaded(
            TwoPCSystem(["p", "q"], seed=1, latency=constant_latency(3.0),
                        retries=4, retry_backoff=8.0)
        )
        system.submit_at(1.0, visit("t1"))
        system.submit_at(1.5, query("audit"))
        system.run_until_quiet()
        attempts = [
            r for r in system.history.txns.values()
            if r.name.startswith("audit")
        ]
        committed = [r for r in attempts if not r.aborted]
        assert len(committed) == 1
        values = dict(committed[0].reads)
        # Never fractured: either fully before or fully after.
        assert values in ({"x": 100, "y": 200}, {"x": 110, "y": 220})
        # The query was impeded by the writer: it waited on a lock or was
        # wait-die aborted and retried.
        impeded = any(r.aborted for r in attempts) or any(
            r.waits.get("lock", 0.0) > 0.0 for r in attempts
        )
        assert impeded

    def test_remote_wait_is_nonzero(self):
        system = loaded(
            TwoPCSystem(["p", "q"], seed=1, latency=constant_latency(3.0))
        )
        system.submit(visit("t1"))
        system.run_until_quiet()
        assert system.history.txn("t1").remote_wait > 0.0

    def test_wait_die_abort_and_retry(self):
        """Two transactions locking x and y in opposite orders deadlock;
        wait-die kills the younger, and the retry commits."""
        xy = TransactionSpec(
            name="xy",
            root=SubtxnSpec(
                node="p", ops=[WriteOp("x", Increment(1))],
                children=[SubtxnSpec(node="q", ops=[WriteOp("y", Increment(1))])],
            ),
        )
        yx = TransactionSpec(
            name="yx",
            root=SubtxnSpec(
                node="q", ops=[WriteOp("y", Increment(1))],
                children=[SubtxnSpec(node="p", ops=[WriteOp("x", Increment(1))])],
            ),
        )
        system = loaded(
            TwoPCSystem(["p", "q"], seed=1, latency=constant_latency(5.0),
                        retries=4, retry_backoff=10.0)
        )
        system.submit_at(1.0, xy)
        system.submit_at(1.1, yx)
        system.run_until_quiet()
        aborted = [r for r in system.history.txns.values() if r.aborted]
        assert aborted, "expected at least one wait-die abort"
        # Both logical transactions eventually applied exactly once.
        assert system.value_at("p", "x") == 102
        assert system.value_at("q", "y") == 202

    def test_no_retries_when_disabled(self):
        bad = TransactionSpec(
            name="solo",
            root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(1))]),
        )
        system = loaded(TwoPCSystem(["p", "q"], seed=1, retries=0))
        system.submit(bad)
        system.run_until_quiet()
        assert len(system.history.txns) == 1
