"""Differential and unit tests for the fixed three-slot store.

The paper notes a real implementation "could re-use old version numbers,
employing only three distinct numbers".  :class:`SlotStore` does so; here
we prove it is observationally equivalent to the unbounded
:class:`MVStore` whenever usage respects the Section 4.4 window property
— and that it *loudly* rejects usage that violates the bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeConfig, ThreeVSystem
from repro.errors import MissingItemError, MissingVersionError, StorageError
from repro.sim import RngRegistry
from repro.storage import Increment, MVStore, SlotStore
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals


class TestUnitBehaviour:
    def test_basic_read_write(self):
        store = SlotStore()
        store.load("x", 10)
        store.ensure_version("x", 1)
        store.apply_geq("x", 1, Increment(5))
        assert store.get_exact("x", 0) == 10
        assert store.get_exact("x", 1) == 15
        assert store.read_max_leq("x", 7) == 15
        assert store.versions("x") == [0, 1]

    def test_missing_reads(self):
        store = SlotStore()
        with pytest.raises(MissingItemError):
            store.read_max_leq("ghost", 2)
        assert store.read_max_leq("ghost", 2, default=None) is None
        store.load("x", 1, version=5)
        with pytest.raises(MissingVersionError):
            store.get_exact("x", 4)

    def test_duplicate_load_rejected(self):
        store = SlotStore()
        store.load("x", 1)
        with pytest.raises(StorageError):
            store.load("x", 2, version=0)

    def test_fourth_concurrent_version_rejected(self):
        """Versions 0,1,2 occupy all slots; version 3 maps onto version
        0's slot and must be refused while 0 is live."""
        store = SlotStore()
        store.load("x", 10)
        store.ensure_version("x", 1)
        store.ensure_version("x", 2)
        with pytest.raises(StorageError):
            store.ensure_version("x", 3)

    def test_slot_reuse_after_collect(self):
        store = SlotStore()
        store.load("x", 10)
        for version in range(1, 9):
            store.ensure_version("x", version)
            store.apply_geq("x", version, Increment(1))
            store.collect(version)  # keep the window tight
        assert store.versions("x") == [8]
        assert store.get_exact("x", 8) == 18

    def test_collect_renames_latest_earlier(self):
        store = SlotStore()
        store.load("cold", 7)
        store.collect(2)
        assert store.versions("cold") == [2]
        assert store.get_exact("cold", 2) == 7

    def test_histogram_and_snapshot(self):
        store = SlotStore()
        store.load("x", 1)
        store.ensure_version("x", 1)
        store.load("y", 2)
        assert store.live_version_histogram() == {1: 1, 2: 1}
        assert store.snapshot() == {"x": {0: 1, 1: 1}, "y": {0: 2}}


class TestDifferentialAgainstMVStore:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ensure+write", "read", "collect", "load"]),
                st.integers(min_value=0, max_value=2),  # key index
                st.integers(min_value=0, max_value=2),  # version offset
                st.integers(min_value=-5, max_value=5),  # delta
            ),
            max_size=40,
        )
    )
    def test_same_observable_behaviour(self, script):
        """Any protocol-shaped op sequence (versions within a sliding
        3-wide window) produces identical observations on both stores."""
        mv, slot = MVStore(), SlotStore()
        base = 0
        keys = ["a", "b", "c"]
        loaded = set()
        for action, key_index, offset, delta in script:
            key = keys[key_index]
            version = base + offset
            if action == "load":
                if key in loaded or key in mv:
                    continue
                loaded.add(key)
                mv.load(key, 100, version=base)
                slot.load(key, 100, version=base)
            elif action == "ensure+write":
                created_mv = mv.ensure_version(key, version)
                created_slot = slot.ensure_version(key, version)
                assert created_mv == created_slot
                assert mv.apply_geq(key, version, Increment(delta)) == (
                    slot.apply_geq(key, version, Increment(delta))
                )
            elif action == "read":
                assert mv.read_max_leq(key, version, default=None) == (
                    slot.read_max_leq(key, version, default=None)
                )
                assert mv.versions(key) == slot.versions(key)
            elif action == "collect":
                base += 1
                mv.collect(base)
                slot.collect(base)
            assert mv.snapshot() == slot.snapshot()
        assert mv.max_live_versions == slot.max_live_versions
        assert mv.dual_writes == slot.dual_writes


class TestEndToEndWithSlotStore:
    def run_system(self, store_factory, seed=19):
        node_ids = ["n0", "n1", "n2"]
        system = ThreeVSystem(
            node_ids, seed=seed,
            node_config=NodeConfig(store_factory=store_factory),
            poll_interval=0.5,
        )
        config = RecordingConfig(nodes=node_ids, entities=8, span=2,
                                 amount_mode="bitmask")
        workload = RecordingWorkload(config, RngRegistry(seed + 1))
        workload.install(system)
        arrivals = RngRegistry(seed + 2)
        drive(system, poisson_arrivals(arrivals, "u", 5.0, 20.0),
              workload.make_recording)
        drive(system, poisson_arrivals(arrivals, "r", 3.0, 20.0),
              workload.make_inquiry)
        for at in (5.0, 12.0):
            system.sim.schedule(at, self._try_advance, system)
        system.run(until=20.0)
        system.run_until_quiet()
        return system, workload

    @staticmethod
    def _try_advance(system):
        from repro.errors import AdvancementInProgress

        try:
            system.advance_versions()
        except AdvancementInProgress:
            pass

    def test_whole_protocol_identical_on_both_stores(self):
        mv_system, mv_workload = self.run_system(MVStore)
        slot_system, _ = self.run_system(SlotStore)
        mv_reads = {
            name: record.reads
            for name, record in mv_system.history.txns.items()
        }
        slot_reads = {
            name: record.reads
            for name, record in slot_system.history.txns.items()
        }
        assert mv_reads == slot_reads
        for node_id in mv_system.nodes:
            assert (
                mv_system.node(node_id).store.snapshot()
                == slot_system.node(node_id).store.snapshot()
            )

    def test_slot_store_passes_the_oracle(self):
        from repro.analysis import audit

        system, workload = self.run_system(SlotStore)
        report = audit(system.history, workload, check_snapshots=True)
        assert report.clean, report.violations[:3]
