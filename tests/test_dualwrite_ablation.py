"""Ablation of the dual-write rule (Section 4.1 step 4).

The paper resolves the straggler dilemma — "iq cannot execute against
version 1 on q [alone] ... version 2 of the database on this node would
not reflect the result of iq" — by updating every version >= V(T).
Disabling that single rule must reintroduce the inconsistency, first in
the deterministic Table 1 scenario and then as snapshot violations under
randomized straggler-heavy load.
"""

import pytest

from repro.analysis import audit
from repro.core import NodeConfig, ThreeVSystem
from repro.net import UniformLatency
from repro.sim import LogNormal, RngRegistry
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals
from repro.workloads.paper_example import (
    DELTAS,
    INITIAL,
    SCHEDULE,
    read_x,
    read_y,
    scripted_latencies,
    transaction_i,
    transaction_j,
)


def paper_scenario(dual_write: bool):
    """The Table 1 scenario on a system with/without the rule."""
    system = ThreeVSystem(
        ["p", "q", "s"], seed=0, latency=scripted_latencies(),
        poll_interval=0.5,
        node_config=NodeConfig(dual_write=dual_write),
    )
    for key in ("A", "B"):
        system.load("p", key, INITIAL[key])
    for key in ("D", "E"):
        system.load("q", key, INITIAL[key])
    system.load("s", "F", INITIAL["F"])
    system.submit_at(SCHEDULE["i"], transaction_i())
    system.submit_at(SCHEDULE["x"], read_x())
    system.sim.schedule(SCHEDULE["advancement"], system.advance_versions)
    system.submit_at(SCHEDULE["j"], transaction_j())
    system.submit_at(SCHEDULE["y"], read_y())
    system.run_until_quiet()
    return system


class TestDeterministicScenario:
    def test_with_rule_version_2_of_d_includes_straggler(self):
        system = paper_scenario(dual_write=True)
        d2 = system.node("q").store.get_exact("D", 2)
        assert d2 == INITIAL["D"] + DELTAS[("iq", "D")] + DELTAS[("j", "D")]

    def test_without_rule_version_2_of_d_is_short(self):
        """Exactly the inconsistency the paper describes: version 2 at q
        reflects j but not iq, while version 2 at p reflects i's root —
        the transaction is torn across versions forever."""
        system = paper_scenario(dual_write=False)
        d2 = system.node("q").store.get_exact("D", 2)
        assert d2 == INITIAL["D"] + DELTAS[("j", "D")]  # missing iq!
        # Version 1 is still fine (the straggler wrote it) ...
        d1 = system.node("q").store.get_exact("D", 1)
        assert d1 == INITIAL["D"] + DELTAS[("iq", "D")]
        # ... so the damage is silent until version 2 becomes readable.


class TestRandomizedLoad:
    def run(self, dual_write: bool, seed=33):
        node_ids = [f"n{i}" for i in range(4)]
        system = ThreeVSystem(
            node_ids, seed=seed,
            latency=UniformLatency(LogNormal(mean=1.0, sigma=1.2)),
            poll_interval=0.5,
            node_config=NodeConfig(dual_write=dual_write),
        )
        config = RecordingConfig(nodes=node_ids, entities=8, span=3,
                                 amount_mode="bitmask")
        workload = RecordingWorkload(config, RngRegistry(seed + 1))
        workload.install(system)
        arrivals = RngRegistry(seed + 2)
        drive(system, poisson_arrivals(arrivals, "u", 6.0, 40.0),
              workload.make_recording)
        drive(system, poisson_arrivals(arrivals, "r", 5.0, 40.0),
              workload.make_inquiry)
        for at in (8.0, 20.0, 32.0):
            system.sim.schedule(at, self._try_advance, system)
        system.run(until=40.0)
        system.run_until_quiet(limit=10_000_000)
        # Make the later versions readable (damaged copies included),
        # then look at them: the missing straggler contributions only
        # become observable once their version is served to readers.
        for _ in range(2):
            system.advance_versions()
            system.run_until_quiet(limit=10_000_000)
        for index in range(200, 240):
            system.submit(workload.make_inquiry(index))
        system.run_until_quiet(limit=10_000_000)
        return audit(system.history, workload, check_snapshots=True)

    @staticmethod
    def _try_advance(system):
        from repro.errors import AdvancementInProgress

        try:
            system.advance_versions()
        except AdvancementInProgress:
            pass

    def test_rule_on_is_clean(self):
        report = self.run(dual_write=True)
        assert report.clean, report.violations[:3]

    def test_rule_off_violates_snapshots(self):
        report = self.run(dual_write=False)
        assert report.snapshot_mismatches > 0
