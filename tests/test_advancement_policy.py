"""Unit tests for advancement policies and coordinator bookkeeping."""

import pytest

from repro.core import (
    CountPolicy,
    DivergencePolicy,
    ManualPolicy,
    PeriodicPolicy,
    ThreeVSystem,
    TransactionTriggerPolicy,
)
from repro.storage import Increment
from repro.txn import SubtxnSpec, TransactionSpec, WriteOp


def bump(name):
    return TransactionSpec(
        name=name, root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(1))])
    )


def make_system(policy=None, **kwargs):
    system = ThreeVSystem(["p", "q"], seed=2, policy=policy, **kwargs)
    system.load("p", "x", 0)
    return system


class TestPeriodicPolicy:
    def test_advances_on_schedule(self):
        system = make_system(policy=PeriodicPolicy(20.0))
        system.run(until=100.0)
        system.stop_policy()
        system.run_until_quiet()
        # Roughly one advancement per period (first at ~20).
        assert 3 <= system.coordinator.completed_runs <= 5

    def test_no_overlapping_advancements(self):
        # Period far shorter than an advancement (latency 1.0 per hop);
        # the policy must serialize, not crash.
        system = make_system(policy=PeriodicPolicy(0.5))
        system.run(until=30.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs >= 2
        assert not system.coordinator.running

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicPolicy(0.0)

    def test_start_after_override(self):
        system = make_system(policy=PeriodicPolicy(50.0, start_after=5.0))
        system.run(until=20.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 1


class TestCountPolicy:
    def test_advances_after_threshold_commits(self):
        system = make_system(policy=CountPolicy(5, check_interval=0.5))
        for index in range(12):
            system.submit_at(index + 1.0, bump(f"u{index}"))
        system.run(until=40.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs >= 2

    def test_no_advancement_below_threshold(self):
        system = make_system(policy=CountPolicy(100, check_interval=0.5))
        for index in range(3):
            system.submit_at(index + 1.0, bump(f"u{index}"))
        system.run(until=20.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            CountPolicy(0)


class TestDivergencePolicy:
    def test_advances_when_versions_drift(self):
        policy = DivergencePolicy(
            threshold=25.0, watch=[("p", "x")], check_interval=0.5
        )
        system = make_system(policy=policy)
        # Ten increments of 5 drift version 1 fifty units from version 0.
        for index in range(10):
            system.submit_at(
                index + 1.0,
                TransactionSpec(
                    name=f"u{index}",
                    root=SubtxnSpec(node="p",
                                    ops=[WriteOp("x", Increment(5))]),
                ),
            )
        system.run(until=60.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs >= 1
        # After the advancement the visible value caught up, so the
        # divergence collapsed and re-advancement stopped.
        assert system.value_at("p", "x") >= 30

    def test_no_advancement_below_threshold(self):
        policy = DivergencePolicy(
            threshold=1000.0, watch=[("p", "x")], check_interval=0.5
        )
        system = make_system(policy=policy)
        system.submit(bump("u0"))
        system.run(until=20.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DivergencePolicy(threshold=0.0, watch=[("p", "x")])
        with pytest.raises(ValueError):
            DivergencePolicy(threshold=1.0, watch=[])

    def test_unbound_policy_rejected(self):
        from repro.sim import Simulator

        policy = DivergencePolicy(threshold=1.0, watch=[("p", "x")])
        with pytest.raises(ValueError):
            policy.start(Simulator(), None, None)


class TestTransactionTriggerPolicy:
    def test_advances_after_named_commit(self):
        policy = TransactionTriggerPolicy(["end-of-day"])
        system = make_system(policy=policy)
        system.submit_at(1.0, bump("u0"))
        system.submit_at(5.0, bump("end-of-day"))
        system.run(until=40.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 1
        assert system.value_at("p", "x") == 2

    def test_no_trigger_no_advancement(self):
        policy = TransactionTriggerPolicy(["end-of-day"])
        system = make_system(policy=policy)
        system.submit(bump("u0"))
        system.run(until=20.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 0

    def test_multiple_triggers_multiple_advancements(self):
        policy = TransactionTriggerPolicy(["close-1", "close-2"])
        system = make_system(policy=policy)
        system.submit_at(1.0, bump("close-1"))
        system.submit_at(2.0, bump("close-2"))
        system.run(until=80.0)
        system.stop_policy()
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 2

    def test_empty_trigger_set_rejected(self):
        with pytest.raises(ValueError):
            TransactionTriggerPolicy([])


class TestManualPolicy:
    def test_never_advances(self):
        system = make_system(policy=ManualPolicy())
        system.submit(bump("u0"))
        system.run_until_quiet()
        assert system.coordinator.completed_runs == 0
        assert system.read_version == 0


class TestCoordinatorBookkeeping:
    def test_advancement_record_phases_ordered(self):
        system = make_system()
        system.submit(bump("u0"))
        system.run_until_quiet()
        system.advance_versions()
        system.run_until_quiet()
        record = system.history.advancements[0]
        assert record.started <= record.phase1_done <= record.phase2_done
        assert record.phase2_done <= record.phase3_done <= record.gc_done
        assert record.duration == record.gc_done - record.started
        assert record.read_visible_at == record.phase3_done
        assert record.counter_polls >= 2  # phase 2 and phase 4

    def test_version_numbers_track_runs(self):
        system = make_system()
        for _round in range(3):
            system.advance_versions()
            system.run_until_quiet()
        assert system.read_version == 3
        assert system.update_version == 4
        for node in system.nodes.values():
            assert node.vr == 3
            assert node.vu == 4

    def test_control_traffic_is_accounted(self):
        system = make_system()
        system.advance_versions()
        system.run_until_quiet()
        assert system.network.stats.control_messages > 0
        assert system.network.stats.user_messages == 0
