"""Property tests: incremental aggregate quiescence ≡ the full scan.

The two-wave detector now polls one scalar per node per wave
(``CounterTable.request_total`` / ``completion_total``, summed by
:func:`repro.storage.counters.aggregate_quiescent`) instead of shipping
O(nodes) rows and scanning O(nodes²) cells.  These properties pin the
soundness argument from the module docstring:

* the incrementally-maintained totals always equal the sum of the
  per-peer rows, under arbitrary interleavings of increments, version
  allocation, garbage collection, and crash-recovery (WAL replay
  re-deriving the totals from the redo log);
* on any reachable two-wave snapshot (completions read strictly before
  requests), the aggregate verdict equals the full-scan verdict, and
  both equal ground truth (no subtransaction outstanding).
"""

from __future__ import annotations

import dataclasses
import typing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._accel import AccelUnavailableError, load_accel, pure_namespace
from repro.storage.wal import JournaledCounters


def _counter_builds():
    pure = pure_namespace("repro.storage.counters")
    builds = [pytest.param(
        (pure["CounterTable"], pure["quiescent"], pure["aggregate_quiescent"]),
        id="pure")]
    try:
        compiled = load_accel("repro.storage.counters")
    except AccelUnavailableError:
        builds.append(pytest.param(None, id="accel", marks=pytest.mark.skip(
            reason="no compiled kernel build present")))
    else:
        builds.append(pytest.param(
            (compiled.CounterTable, compiled.quiescent,
             compiled.aggregate_quiescent),
            id="accel"))
    return builds


#: ``(CounterTable, quiescent, aggregate_quiescent)`` for each kernel
#: build; the accel leg skips cleanly when no compiled build is present.
COUNTER_BUILDS = _counter_builds()

NODES = ("a", "b", "c")
VERSIONS = (1, 2, 3)


@dataclasses.dataclass(frozen=True)
class Send:
    src: str
    dst: str
    version: int


@dataclasses.dataclass(frozen=True)
class Complete:
    #: Which in-flight send to complete (modulo the pending count).
    pick: int


@dataclasses.dataclass(frozen=True)
class Gc:
    node: str
    version: int


@dataclasses.dataclass(frozen=True)
class Crash:
    node: str


ops = st.lists(
    st.one_of(
        st.builds(Send, st.sampled_from(NODES), st.sampled_from(NODES),
                  st.sampled_from(VERSIONS)),
        st.builds(Complete, st.integers(min_value=0, max_value=10 ** 6)),
        st.builds(Crash, st.sampled_from(NODES)),
    ),
    max_size=60,
)

ops_with_gc = st.lists(
    st.one_of(
        st.builds(Send, st.sampled_from(NODES), st.sampled_from(NODES),
                  st.sampled_from(VERSIONS)),
        st.builds(Complete, st.integers(min_value=0, max_value=10 ** 6)),
        st.builds(Crash, st.sampled_from(NODES)),
        st.builds(Gc, st.sampled_from(NODES), st.sampled_from(VERSIONS)),
    ),
    max_size=60,
)


def journaled(node_id: str, counter_cls) -> JournaledCounters:
    return JournaledCounters(counter_cls(node_id),
                             lambda: counter_cls(node_id))


def apply_ops(tables: typing.Dict[str, JournaledCounters],
              sequence) -> typing.List[Send]:
    """Drive the tables; returns the sends still outstanding."""
    pending: typing.List[Send] = []
    for op in sequence:
        if isinstance(op, Send):
            tables[op.src].ensure_version(op.version)
            tables[op.src].inc_request(op.version, op.dst)
            pending.append(op)
        elif isinstance(op, Complete):
            if not pending:
                continue
            send = pending.pop(op.pick % len(pending))
            tables[send.dst].ensure_version(send.version)
            tables[send.dst].inc_completion(send.version, send.src)
        elif isinstance(op, Gc):
            tables[op.node].gc_below(op.version)
        else:  # Crash: lose the volatile table, rebuild from the redo log.
            tables[op.node].replay()
    return pending


def assert_totals_match_rows(table: CounterTable) -> None:
    for version in table.versions():
        assert table.request_total(version) == \
            sum(table.requests(version).values())
        assert table.completion_total(version) == \
            sum(table.completions(version).values())
        assert table.outstanding(version) == (
            table.request_total(version) - table.completion_total(version))


@pytest.mark.parametrize("kernel", COUNTER_BUILDS)
@settings(deadline=None)
@given(ops_with_gc)
def test_totals_track_rows_through_gc_and_replay(kernel, sequence):
    """The aggregate totals are always exactly the sum of the rows —
    including after GC drops versions and WAL replay rebuilds the table
    (re-deriving the totals by re-running the logged increments)."""
    counter_cls, _, _ = kernel
    tables = {node: journaled(node, counter_cls) for node in NODES}
    apply_ops(tables, sequence)
    for wrapper in tables.values():
        assert_totals_match_rows(wrapper.raw)


@pytest.mark.parametrize("kernel", COUNTER_BUILDS)
@settings(deadline=None)
@given(ops_with_gc)
def test_replay_restores_identical_state(kernel, sequence):
    """Crash recovery is exact: rows, totals, and the GC loss counter all
    survive a replay bit-for-bit."""
    counter_cls, _, _ = kernel
    tables = {node: journaled(node, counter_cls) for node in NODES}
    apply_ops(tables, sequence)
    for wrapper in tables.values():
        before = wrapper.raw
        snapshot = {
            version: (before.requests(version), before.completions(version),
                      before.request_total(version),
                      before.completion_total(version))
            for version in before.versions()
        }
        lost = before.lost_increments
        wrapper.replay()
        after = wrapper.raw
        assert after is not before
        assert after.versions() == list(snapshot)
        assert after.lost_increments == lost
        for version, (reqs, comps, req_total, comp_total) in \
                snapshot.items():
            assert after.requests(version) == reqs
            assert after.completions(version) == comps
            assert after.request_total(version) == req_total
            assert after.completion_total(version) == comp_total


@pytest.mark.parametrize("kernel", COUNTER_BUILDS)
@settings(deadline=None)
@given(ops, st.sampled_from(VERSIONS),
       st.lists(st.builds(Send, st.sampled_from(NODES),
                          st.sampled_from(NODES), st.sampled_from(VERSIONS)),
                max_size=8))
def test_aggregate_agrees_with_scan_on_two_wave_snapshots(
        kernel, sequence, version, between_waves):
    """On every reachable two-wave snapshot the aggregate verdict, the
    full-scan verdict, and ground truth coincide.

    ``between_waves`` injects extra request increments after the
    completion wave was read — the racy interleaving the two-wave order
    exists to tolerate: the new requests can only make snapshots look
    *less* quiescent, never more.
    """
    counter_cls, quiescent, aggregate_quiescent = kernel
    tables = {node: journaled(node, counter_cls) for node in NODES}
    pending = apply_ops(tables, sequence)

    # Wave 1: completions (totals and rows read at the same instant).
    comp_totals = {n: t.completion_total(version)
                   for n, t in tables.items()}
    comp_rows = {n: t.completions(version) for n, t in tables.items()}
    # In-flight work lands between the waves.
    for send in between_waves:
        tables[send.src].ensure_version(send.version)
        tables[send.src].inc_request(send.version, send.dst)
        pending.append(send)
    # Wave 2: requests.
    req_totals = {n: t.request_total(version) for n, t in tables.items()}
    req_rows = {n: t.requests(version) for n, t in tables.items()}

    truth = not any(send.version == version for send in pending)
    assert aggregate_quiescent(req_totals, comp_totals) == truth
    assert quiescent(req_rows, comp_rows) == truth
