"""Replay of the paper's Table 1 execution and Figure 2 snapshots.

These tests pin the reproduction to the paper's own worked example: the
scripted three-site scenario must produce exactly the version placements,
dual writes, counter values, and final state the paper describes.
"""

import pytest

from repro.workloads.paper_example import (
    DELTAS,
    INITIAL,
    expected_final_state,
    run_example,
    transaction_i,
)


@pytest.fixture(scope="module")
def run():
    return run_example(
        snapshot_times=[("start", 0.5), ("mid-advancement", 12.0)]
    )


class TestKeyOrderings:
    """The three version-routing cases of Section 2.3."""

    def test_j_executes_against_version_2(self, run):
        assert run.system.history.txn("j").version == 2

    def test_i_executes_against_version_1(self, run):
        assert run.system.history.txn("i").version == 1

    def test_jp_write_carried_version_2_to_p(self, run):
        jp_writes = [
            e for e in run.system.history.write_events
            if e.subtxn == "jp" and e.key == "A"
        ]
        assert len(jp_writes) == 1
        assert jp_writes[0].version == 2
        assert jp_writes[0].node == "p"
        assert jp_writes[0].versions_written == 1

    def test_p_inferred_advancement_from_jp(self, run):
        """jp arrived before the coordinator's notice, so p's write of A(2)
        precedes the moment the notice reached p (send time 9 + 6)."""
        jp_write = next(
            e for e in run.system.history.write_events if e.subtxn == "jp"
        )
        notice_arrival_at_p = 9.0 + 6.0
        assert jp_write.time < notice_arrival_at_p

    def test_iq_dual_writes_d(self, run):
        """Straggler iq (version 1) finds D(2) at q: updates versions 1 and 2."""
        iq_d = next(
            e for e in run.system.history.write_events
            if e.subtxn == "iq" and e.key == "D"
        )
        assert iq_d.version == 1
        assert iq_d.versions_written == 2

    def test_iq_single_writes_e(self, run):
        """E has no version-2 copy, so iq pays no dual-write overhead."""
        iq_e = next(
            e for e in run.system.history.write_events
            if e.subtxn == "iq" and e.key == "E"
        )
        assert iq_e.versions_written == 1

    def test_exactly_one_dual_write_in_whole_run(self, run):
        assert sum(n.store.dual_writes for n in run.system.nodes.values()) == 1

    def test_reads_use_version_0(self, run):
        x = run.system.history.txn("x")
        y = run.system.history.txn("y")
        assert x.version == 0 and x.reads == [("A", INITIAL["A"])]
        assert y.version == 0 and y.reads == [("D", INITIAL["D"])]


class TestFinalState:
    def test_versions_match_figure_2_final_panel(self, run):
        expected = expected_final_state()
        for key, chains in expected.items():
            node = next(
                n for n in run.system.nodes.values() if key in n.store
            )
            assert node.store.versions(key) == sorted(chains), key
            for version, value in chains.items():
                assert node.store.get_exact(key, version) == value, (
                    key, version,
                )

    def test_advancement_completed(self, run):
        assert run.system.read_version == 1
        assert run.system.update_version == 2
        for node in run.system.nodes.values():
            assert node.vr == 1
            assert node.vu == 2

    def test_counters_converged_and_gcd(self, run):
        """After Phase 4, only counters for versions >= vr remain, and
        version-1 requests match completions pairwise."""
        for node in run.system.nodes.values():
            assert all(v >= 1 for v in node.counters.versions())
        p = run.system.node("p")
        q = run.system.node("q")
        s = run.system.node("s")
        assert p.counters.request_count(1, "q") == 1  # iq
        assert q.counters.completion_count(1, "p") == 1
        assert p.counters.request_count(1, "s") == 1  # is
        assert s.counters.completion_count(1, "p") == 1
        assert q.counters.request_count(1, "p") == 1  # iqp
        assert p.counters.completion_count(1, "q") == 1

    def test_no_user_transaction_waited_on_remote_activity(self, run):
        for name in ("i", "j", "x", "y"):
            assert run.system.history.txn(name).remote_wait == 0.0, name

    def test_all_transactions_completed(self, run):
        for name in ("i", "j", "x", "y"):
            record = run.system.history.txn(name)
            assert not record.aborted
            assert record.global_complete_time is not None


class TestSnapshots:
    def test_start_snapshot_is_version_0_only(self, run):
        snapshot = run.snapshots["start"]
        for key, chain in snapshot.items():
            assert list(chain) == [0], key
            assert chain[0] == INITIAL[key]

    def test_mid_advancement_snapshot_shows_three_version_items(self, run):
        """At t=12: A has versions {0,1,2} at p (i wrote 1, jp wrote 2);
        D has versions {0,2} at q (j wrote 2, iq not yet arrived)."""
        snapshot = run.snapshots["mid-advancement"]
        assert sorted(snapshot["A"]) == [0, 1, 2]
        assert sorted(snapshot["D"]) == [0, 2]
        assert sorted(snapshot["B"]) == [0]
        assert sorted(snapshot["E"]) == [0]
        assert sorted(snapshot["F"]) == [0, 1]
        assert snapshot["A"][2] == (
            INITIAL["A"] + DELTAS[("i", "A")] + DELTAS[("jp", "A")]
        )
        assert snapshot["D"][2] == INITIAL["D"] + DELTAS[("j", "D")]

    def test_never_more_than_three_versions(self, run):
        for node in run.system.nodes.values():
            assert node.store.max_live_versions <= 3


class TestSpecShape:
    def test_transaction_i_ids_match_paper(self):
        from repro.txn import TxnIndex

        index = TxnIndex(transaction_i())
        assert set(index.by_id) == {"i", "iq", "is", "iqp"}
        assert index.parent["iqp"] == "iq"
        assert index.node_of("iqp") == "p"
