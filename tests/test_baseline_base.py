"""Unit tests for the shared baseline scaffolding and message envelopes."""

import pytest

from repro.baselines import BaselineSystem, NoCoordSystem
from repro.errors import ProtocolError
from repro.net.message import Message, MessageKind
from repro.storage import Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp


class TestBaselineSystemSurface:
    def test_empty_node_list_rejected(self):
        with pytest.raises(ProtocolError):
            NoCoordSystem([])

    def test_unknown_node_rejected(self):
        system = NoCoordSystem(["a"])
        with pytest.raises(ProtocolError):
            system.node("zz")

    def test_submit_at_schedules_future(self):
        system = NoCoordSystem(["a"], seed=1)
        system.load("a", "x", 0)
        system.submit_at(
            5.0,
            TransactionSpec(
                name="t",
                root=SubtxnSpec(node="a", ops=[WriteOp("x", Increment(1))]),
            ),
        )
        system.run(until=4.0)
        assert "t" not in system.history.txns
        system.run_until_quiet()
        assert system.history.txn("t").submit_time == 5.0
        assert system.submitted_count == 1

    def test_run_until_quiet_limit(self):
        from repro.net import constant_latency

        system = NoCoordSystem(["a", "b"], seed=1,
                               latency=constant_latency(100.0))
        system.load("b", "x", 0)
        system.submit(TransactionSpec(
            name="t",
            root=SubtxnSpec(node="a", children=[
                SubtxnSpec(node="b", ops=[WriteOp("x", Increment(1))])]),
        ))
        with pytest.raises(ProtocolError):
            system.run_until_quiet(limit=10.0)

    def test_value_at_default_read_version(self):
        system = NoCoordSystem(["a"], seed=1)
        system.load("a", "x", 42)
        assert system.value_at("a", "x") == 42
        assert system.value_at("a", "missing") is None

    def test_stop_policy_is_noop(self):
        NoCoordSystem(["a"]).stop_policy()

    def test_generic_base_node_handles_nothing_extra(self):
        system = BaselineSystem(["a"], seed=1)
        system.network.register("outsider")
        system.network.send("outsider", "a", MessageKind.PREPARE, "x")
        with pytest.raises(ProtocolError):
            system.run_until_quiet()

    def test_multi_visit_tree_on_baseline(self):
        """The tree model (revisiting nodes) works on baselines too."""
        system = NoCoordSystem(["a", "b"], seed=1)
        system.load("a", "x", 0)
        system.load("b", "y", 0)
        spec = TransactionSpec(
            name="t",
            root=SubtxnSpec(
                node="a", ops=[WriteOp("x", Increment(1))],
                children=[SubtxnSpec(
                    node="b", ops=[WriteOp("y", Increment(1))],
                    children=[SubtxnSpec(node="a",
                                         ops=[WriteOp("x", Increment(10))])],
                )],
            ),
        )
        system.submit(spec)
        system.run_until_quiet()
        assert system.value_at("a", "x") == 11
        assert system.value_at("b", "y") == 1
        assert system.history.txn("t").global_complete_time is not None


class TestMessageEnvelope:
    def test_ids_are_unique_and_increasing(self):
        a = Message(src="x", dst="y", kind=MessageKind.SUBTXN_REQUEST)
        b = Message(src="x", dst="y", kind=MessageKind.SUBTXN_REQUEST)
        assert b.message_id > a.message_id

    def test_user_traffic_classification(self):
        assert Message(src="a", dst="b",
                       kind=MessageKind.COMPENSATION).is_user_traffic
        assert not Message(src="a", dst="b",
                           kind=MessageKind.PREPARE).is_user_traffic

    def test_kind_categories_are_disjoint(self):
        assert not (MessageKind.USER_KINDS & MessageKind.CONTROL_KINDS)
        assert not (MessageKind.USER_KINDS & MessageKind.COMMIT_KINDS)
        assert not (MessageKind.CONTROL_KINDS & MessageKind.COMMIT_KINDS)

    def test_repr_mentions_route(self):
        message = Message(src="a", dst="b", kind=MessageKind.SUBTXN_REQUEST)
        assert "a->b" in repr(message)

    def test_read_only_audit_query_on_baseline(self):
        system = NoCoordSystem(["a"], seed=1)
        system.load("a", "x", 9)
        system.submit(TransactionSpec(
            name="q", root=SubtxnSpec(node="a", ops=[ReadOp("x")]),
        ))
        system.run_until_quiet()
        assert system.history.txn("q").reads == [("x", 9)]
