"""The fault-injection stack in isolation: plans, injector, reliable layer.

Covers the pure-data :class:`FaultPlan` (validation, storm determinism),
the :class:`FaultyNetwork` injector (seeded drops/dups/spikes), the
reliable-delivery layer (exactly-once over arbitrary lossy links — the
Hypothesis properties), write-ahead journaling, and mailbox freeze/thaw.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.faults import (
    ChaosNetwork,
    CrashEvent,
    FaultPlan,
    FaultyNetwork,
    LinkFaults,
    build_network,
)
from repro.net import (
    MessageKind,
    Network,
    ReliableNetwork,
    RetransmitPolicy,
    constant_latency,
)
from repro.sim import RngRegistry, Simulator
from repro.sim.resources import Store
from repro.storage import Increment
from repro.storage.mvstore import MVStore
from repro.storage.counters import CounterTable
from repro.storage.wal import (
    JournaledCounters,
    JournaledStore,
    NodeJournal,
)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(SimulationError):
            LinkFaults(drop=1.0)
        with pytest.raises(SimulationError):
            LinkFaults(dup=-0.1)
        with pytest.raises(SimulationError):
            LinkFaults(spike_probability=0.1, spike_delay=-1.0)

    def test_crash_event_validated(self):
        with pytest.raises(SimulationError):
            CrashEvent(node="p", at=-1.0, down_for=1.0)
        with pytest.raises(SimulationError):
            CrashEvent(node="p", at=0.0, down_for=0.0)

    def test_link_override_lookup(self):
        slow = LinkFaults(drop=0.5)
        plan = FaultPlan(default_link=LinkFaults(), links={("p", "q"): slow})
        assert plan.link("p", "q") is slow
        assert plan.link("q", "p") == LinkFaults()
        assert plan.lossy  # the override makes the plan lossy

    def test_zero_plan_is_not_lossy(self):
        assert not FaultPlan().lossy
        assert not LinkFaults().active

    def test_storm_is_deterministic(self):
        nodes = ["b", "a", "c"]
        one = FaultPlan.storm(nodes, drop_rate=0.1, crash_count=2,
                              fault_seed=9, duration=30.0)
        # Caller node order must not matter.
        two = FaultPlan.storm(sorted(nodes), drop_rate=0.1, crash_count=2,
                              fault_seed=9, duration=30.0)
        assert one == two
        other = FaultPlan.storm(nodes, drop_rate=0.1, crash_count=2,
                                fault_seed=10, duration=30.0)
        assert one.crashes != other.crashes

    def test_storm_crashes_confined_and_disjoint(self):
        plan = FaultPlan.storm(["p", "q"], crash_count=3, fault_seed=3,
                               duration=40.0)
        assert len(plan.crashes) == 6
        by_node = {}
        for event in plan.crashes:
            assert 0.0 <= event.at
            assert event.at + event.down_for < 0.7 * 40.0
            by_node.setdefault(event.node, []).append(event)
        for events in by_node.values():
            events.sort(key=lambda e: e.at)
            for first, second in zip(events, events[1:]):
                assert first.at + first.down_for < second.at

    def test_storm_rejects_bad_shape(self):
        with pytest.raises(SimulationError):
            FaultPlan.storm(["p"], crash_count=-1)
        with pytest.raises(SimulationError):
            FaultPlan.storm(["p"], duration=0.0)


def _lossy_pair(plan, fifo=False):
    """A two-endpoint network of the class ``build_network`` picks."""
    sim = Simulator()
    network = build_network(sim, plan, rngs=RngRegistry(1),
                            latency=constant_latency(1.0), fifo_links=fifo)
    network.register("a")
    network.register("b")
    return sim, network


class TestFaultyNetwork:
    def test_zero_fault_link_draws_nothing(self):
        plan = FaultPlan()  # all-zero: no drops, no dups, no spikes
        sim, network = _lossy_pair(plan)
        assert isinstance(network, FaultyNetwork)
        assert not isinstance(network, ReliableNetwork)
        for i in range(10):
            network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload=i)
        sim.run()
        assert len(network.mailbox("b")) == 10
        assert network.stats.dropped == 0
        assert network.stats.duplicated == 0

    def test_drops_lose_messages_without_reliable_layer(self):
        plan = FaultPlan(default_link=LinkFaults(drop=0.5))
        sim = Simulator()
        # The bare injector: build FaultyNetwork directly so drops are
        # permanent (build_network would add the reliable layer).
        network = FaultyNetwork(sim, plan=plan, rngs=RngRegistry(1),
                                latency=constant_latency(1.0))
        network.register("a")
        network.register("b")
        for i in range(40):
            network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload=i)
        sim.run()
        delivered = len(network.mailbox("b"))
        assert delivered + network.stats.dropped == 40
        assert 0 < network.stats.dropped < 40

    def test_duplicates_share_message_id(self):
        plan = FaultPlan(default_link=LinkFaults(dup=0.9))
        sim = Simulator()
        network = FaultyNetwork(sim, plan=plan, rngs=RngRegistry(1),
                                latency=constant_latency(1.0))
        network.register("a")
        network.register("b")
        sent = [network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload=i)
                for i in range(20)]
        sim.run()
        inbox = network.mailbox("b").drain()
        assert network.stats.duplicated > 0
        assert len(inbox) == 20 + network.stats.duplicated
        valid_ids = {m.message_id for m in sent}
        assert {m.message_id for m in inbox} == valid_ids

    def test_spikes_delay_delivery(self):
        plan = FaultPlan(
            default_link=LinkFaults(spike_probability=0.99,
                                    spike_delay=50.0),
        )
        sim, network = _lossy_pair(plan)
        assert isinstance(network, FaultyNetwork)  # spike-only: not lossy
        network.send("a", "b", MessageKind.SUBTXN_REQUEST)
        sim.run()
        inbox = network.mailbox("b").drain()
        assert inbox[0].delivered_at == pytest.approx(51.0)

    def test_fault_schedule_independent_of_workload_rng(self):
        """Same fault seed + same send sequence -> same drops, regardless
        of the workload registry's seed."""
        counts = []
        for workload_seed in (1, 99):
            plan = FaultPlan(fault_seed=5,
                             default_link=LinkFaults(drop=0.3))
            sim = Simulator()
            network = FaultyNetwork(sim, plan=plan,
                                    rngs=RngRegistry(workload_seed),
                                    latency=constant_latency(1.0))
            network.register("a")
            network.register("b")
            for i in range(30):
                network.send("a", "b", MessageKind.SUBTXN_REQUEST, i)
            sim.run()
            counts.append(network.stats.dropped)
        assert counts[0] == counts[1] > 0


class TestReliableDelivery:
    def _run_storm(self, drop, dup, count, fault_seed=0, workload_seed=1):
        plan = FaultPlan(
            fault_seed=fault_seed,
            default_link=LinkFaults(drop=drop, dup=dup),
            retransmit=RetransmitPolicy(timeout=3.0, jitter=0.25),
        )
        sim = Simulator()
        network = ChaosNetwork(sim, plan=plan, policy=plan.retransmit,
                               rngs=RngRegistry(workload_seed),
                               latency=constant_latency(1.0))
        network.register("a")
        network.register("b")
        for i in range(count):
            network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload=i)
        sim.run()
        return sim, network

    @SLOW
    @given(
        drop=st.floats(min_value=0.0, max_value=0.8),
        dup=st.floats(min_value=0.0, max_value=0.8),
        count=st.integers(min_value=1, max_value=30),
        fault_seed=st.integers(min_value=0, max_value=1000),
    )
    def test_exactly_once_delivery(self, drop, dup, count, fault_seed):
        """Any drop/dup/reorder schedule: every payload reaches the
        mailbox exactly once and nothing stays unacked."""
        sim, network = self._run_storm(drop, dup, count,
                                       fault_seed=fault_seed)
        payloads = [m.payload for m in network.mailbox("b").drain()]
        assert sorted(payloads) == list(range(count))
        assert network.pending_unacked == 0

    @SLOW
    @given(
        drop=st.floats(min_value=0.1, max_value=0.7),
        fault_seed=st.integers(min_value=0, max_value=1000),
    )
    def test_backoff_schedule_deterministic(self, drop, fault_seed):
        """Two identically-seeded storms retransmit identically and go
        quiet at the same instant."""
        runs = [self._run_storm(drop, 0.1, 12, fault_seed=fault_seed)
                for _ in range(2)]
        (sim1, net1), (sim2, net2) = runs
        assert net1.stats.retransmits == net2.stats.retransmits
        assert net1.stats.dropped == net2.stats.dropped
        assert net1.stats.dup_suppressed == net2.stats.dup_suppressed
        assert sim1.now == sim2.now
        assert sim1.scheduled_count == sim2.scheduled_count

    def test_acks_never_reach_mailboxes_or_kind_buckets(self):
        sim, network = self._run_storm(0.4, 0.2, 25)
        for message in network.mailbox("b").drain():
            assert message.kind is not MessageKind.NET_ACK
        assert MessageKind.NET_ACK not in MessageKind.USER_KINDS
        assert MessageKind.NET_ACK not in MessageKind.CONTROL_KINDS
        assert MessageKind.NET_ACK not in MessageKind.COMMIT_KINDS

    def test_lossless_reliable_layer_never_retransmits_needlessly(self):
        """With no faults the timers all die quietly after the acks."""
        plan = FaultPlan(default_link=LinkFaults(dup=0.0, drop=0.0))
        sim = Simulator()
        network = ReliableNetwork(sim, rngs=RngRegistry(1),
                                  latency=constant_latency(1.0))
        network.register("a")
        network.register("b")
        for i in range(10):
            network.send("a", "b", MessageKind.SUBTXN_REQUEST, payload=i)
        sim.run()
        assert network.stats.retransmits == 0
        assert network.pending_unacked == 0
        assert len(network.mailbox("b")) == 10

    def test_build_network_picks_reliable_only_when_lossy(self):
        sim = Simulator()
        lossy = build_network(sim, FaultPlan(
            default_link=LinkFaults(drop=0.1)), rngs=RngRegistry(1))
        assert isinstance(lossy, ChaosNetwork)
        clean = build_network(Simulator(), FaultPlan(), rngs=RngRegistry(1))
        assert isinstance(clean, FaultyNetwork)
        assert not isinstance(clean, ReliableNetwork)


class TestMailboxFreeze:
    def test_frozen_store_buffers_and_thaw_flushes(self):
        sim = Simulator()
        store = Store(sim)
        got = []
        store.get().add_callback(lambda ev: got.append(ev.value))
        store.freeze()
        store.put("x")
        sim.run()
        assert got == []  # the waiting getter is starved while frozen
        store.thaw()
        sim.run()
        assert got == ["x"]

    def test_frozen_store_starves_new_getters(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        store.freeze()
        got = []
        store.get().add_callback(lambda ev: got.append(ev.value))
        sim.run()
        assert got == []
        store.thaw()
        sim.run()
        assert got == ["x"]


class TestJournaling:
    def test_store_replay_restores_state(self):
        store = JournaledStore(MVStore(), lambda: MVStore())
        store.load("x", 0)
        store.ensure_version("x", 1)
        store.apply_geq("x", 1, Increment(5))
        before = store.snapshot()
        assert store.journal_length == 3
        store.replay()
        assert store.snapshot() == before
        assert "x" in store

    def test_counters_replay_restores_state(self):
        counters = JournaledCounters(CounterTable("p"),
                                     lambda: CounterTable("p"))
        counters.ensure_version(0)
        counters.ensure_version(1)
        counters.inc_request(1, "q")
        counters.inc_completion(1, "q")
        counters.gc_below(1)
        counters.inc_request(0, "q")  # below the gc floor: dropped
        before = (counters.versions(), counters.lost_increments)
        assert counters.lost_increments == 1
        counters.replay()
        assert (counters.versions(), counters.lost_increments) == before

    def test_node_journal_replays_all_components(self):
        journal = NodeJournal("p")
        store = JournaledStore(MVStore(), lambda: MVStore())
        journal.attach("store", store)
        store.load("x", 7)
        raw_before = store.raw
        journal.replay()
        assert journal.replays == 1
        assert store.raw is not raw_before  # rebuilt, not reused
        assert store.read_max_leq("x", 0) == 7
        assert journal.names == ("store",)
