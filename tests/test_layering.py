"""The import-layering lint is a tier-1 gate: the tree must stay clean,
and the checker itself must actually catch violations (a lint that never
fires is indistinguishable from no lint)."""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_layering.py")


def run_checker(*argv):
    return subprocess.run(
        [sys.executable, CHECKER, *argv],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def seed_tree(root, files):
    for relative, body in files.items():
        path = os.path.join(root, relative)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(body)


def test_repository_layering_is_clean():
    result = run_checker()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "layering check OK" in result.stdout


def test_detects_runtime_importing_a_plugin(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/runtime/__init__.py": "from repro.core.node import ThreeVPlugin\n",
        "repro/core/__init__.py": "",
        "repro/core/node.py": "ThreeVPlugin = object\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "runtime imports higher layer" in result.stdout


def test_detects_plugins_importing_each_other(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/baselines/__init__.py": "",
        "repro/baselines/nocoord.py": "import repro.baselines.twopc\n",
        "repro/baselines/twopc.py": "",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "imports peer group" in result.stdout


def test_relative_imports_are_resolved(tmp_path):
    # "from ..core import node" inside a baseline is still a peer import
    # even though no absolute module name appears in the source.
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/core/__init__.py": "",
        "repro/core/node.py": "",
        "repro/baselines/__init__.py": "",
        "repro/baselines/manual.py": "from ..core import node\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "imports peer group" in result.stdout


def test_detects_faults_importing_the_runtime(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/faults/__init__.py": "from repro.runtime.system import System\n",
        "repro/runtime/__init__.py": "",
        "repro/runtime/system.py": "System = object\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "repro.faults imports" in result.stdout


def test_detects_txn_importing_analysis(tmp_path):
    # The streaming history computes aggregates the analysis layer
    # re-exports; an upward edge from txn would close that into a cycle.
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/txn/__init__.py": "",
        "repro/txn/history.py": (
            "from repro.analysis.metrics import latency_summary\n"
        ),
        "repro/analysis/__init__.py": "",
        "repro/analysis/metrics.py": "latency_summary = object\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "repro.txn imports" in result.stdout


def test_txn_may_import_errors_and_storage(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/txn/__init__.py": "",
        "repro/txn/spec.py": (
            "from repro.errors import ReproError\n"
            "from repro.storage import mvstore\n"
        ),
        "repro/errors.py": "ReproError = Exception\n",
        "repro/storage/__init__.py": "",
        "repro/storage/mvstore.py": "",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 0, result.stdout + result.stderr


def test_faults_may_import_net_and_sim(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/faults/__init__.py": (
            "from repro.net import network\nfrom repro.sim import simulator\n"
        ),
        "repro/net/__init__.py": "",
        "repro/net/network.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/simulator.py": "",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 0, result.stdout + result.stderr


def test_detects_placement_importing_runtime(tmp_path):
    # Placement is substrate: the runtime calls down into it through
    # duck-typed hooks, never the other way around.
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/placement/__init__.py": (
            "from repro.runtime.system import System\n"
        ),
        "repro/runtime/__init__.py": "",
        "repro/runtime/system.py": "System = object\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "repro.placement imports" in result.stdout


def test_detects_placement_importing_txn(tmp_path):
    # should_skip_write receives plain (key, operation) pairs precisely
    # so placement never needs WriteOp; an import of repro.txn means the
    # duck-typing contract broke.
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/placement/__init__.py": "",
        "repro/placement/state.py": "from repro.txn.spec import WriteOp\n",
        "repro/txn/__init__.py": "",
        "repro/txn/spec.py": "WriteOp = object\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "repro.placement imports" in result.stdout


def test_placement_may_import_storage_and_net(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/placement/__init__.py": (
            "from repro.errors import SimulationError\n"
            "from repro.net import message\n"
            "from repro.storage import mvstore\n"
            "from repro.sim import simulator\n"
        ),
        "repro/errors.py": "SimulationError = Exception\n",
        "repro/net/__init__.py": "",
        "repro/net/message.py": "",
        "repro/storage/__init__.py": "",
        "repro/storage/mvstore.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/simulator.py": "",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 0, result.stdout + result.stderr


def test_compat_shim_and_aggregator_are_allowed(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/protocols.py": (
            "import repro.core.node\nimport repro.baselines.twopc\n"
        ),
        "repro/core/__init__.py": "",
        "repro/core/node.py": "from repro.baselines.base import BaselineNode\n",
        "repro/baselines/__init__.py": "",
        "repro/baselines/base.py": "",
        "repro/baselines/twopc.py": "from repro.baselines import base\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 0, result.stdout + result.stderr


def test_detects_runtime_importing_accel(tmp_path):
    # Build selection is invisible: only the kernel shim modules and the
    # package root may touch repro._accel (rule 6).
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/_accel/__init__.py": "",
        "repro/runtime/__init__.py": "from repro._accel import load_accel\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "build selection is invisible" in result.stdout


def test_detects_experiments_importing_accel(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "",
        "repro/_accel/__init__.py": "",
        "repro/exp/__init__.py": "import repro._accel\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 1
    assert "build selection is invisible" in result.stdout


def test_kernel_shims_and_package_root_may_import_accel(tmp_path):
    seed_tree(str(tmp_path), {
        "repro/__init__.py": "from repro._accel import build_mode\n",
        "repro/_accel/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/simulator.py": (
            "from repro._accel import install\ninstall(globals())\n"
        ),
        "repro/storage/__init__.py": "",
        "repro/storage/mvstore.py": "from repro._accel import install\n",
    })
    result = run_checker("--src", str(tmp_path))
    assert result.returncode == 0, result.stdout + result.stderr
