"""Compiled-kernel build: loader semantics, import surface, dual-build
digest identity, and the bench gate's cross-build refusal.

Everything that needs a compiled build skips cleanly when none is present
(``tools/build_accel.py`` has not been run, or the toolchain is absent),
so pure checkouts pass this file unchanged.  The loader-semantics and
bench-gate tests are build-independent and always run.
"""

from __future__ import annotations

import importlib
import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
import repro._accel as accel_loader
from repro._accel import (
    KERNEL_MODULES,
    AccelUnavailableError,
    accel_module_name,
    install,
    load_accel,
    pure_namespace,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench as bench_cli  # noqa: E402
import build_accel as build_cli  # noqa: E402


def compiled_kernel_modules():
    """Canonical names whose compiled twin is importable right now."""
    found = []
    for canonical in KERNEL_MODULES:
        try:
            load_accel(canonical)
        except AccelUnavailableError:
            continue
        found.append(canonical)
    return found


COMPILED = compiled_kernel_modules()

needs_accel = pytest.mark.skipif(
    not COMPILED, reason="no compiled accel build present "
                         "(run `python tools/build_accel.py`)")


def run_py(code, **env_overrides):
    """Run a snippet in a fresh interpreter with a controlled REPRO_ACCEL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    env.pop("REPRO_ACCEL", None)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
    )


class TestLoaderSemantics:
    def test_accel_module_name_mapping(self):
        assert (accel_module_name("repro.sim.simulator")
                == "repro._accel.sim_simulator")
        assert (accel_module_name("repro.storage.mvstore")
                == "repro._accel.storage_mvstore")
        with pytest.raises(ValueError):
            accel_module_name("os.path")

    def test_install_rejects_non_kernel_modules(self):
        with pytest.raises(RuntimeError):
            install({"__name__": "repro.analysis", "__all__": []})

    def test_force_pure_ignores_any_build(self):
        result = run_py(
            "import repro\n"
            "import repro.storage.mvstore, repro.sim.simulator\n"
            "print(repro.build_mode(), repro.accelerated_modules())\n",
            REPRO_ACCEL="0",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "pure ()"

    def test_auto_mode_always_imports(self):
        result = run_py(
            "import repro\n"
            "for name in repro._accel.KERNEL_MODULES:\n"
            "    __import__(name)\n"
            "print(repro.build_mode())\n",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() in ("pure", "accel")

    @needs_accel
    def test_require_mode_selects_compiled(self):
        result = run_py(
            "import json, repro\n"
            "import repro.storage.mvstore, repro.storage.counters\n"
            "import repro.sim.simulator\n"
            "print(json.dumps([repro.build_mode(),\n"
            "                  sorted(repro.accelerated_modules()),\n"
            "                  repro.accel_backend()]))\n",
            REPRO_ACCEL="1",
        )
        assert result.returncode == 0, result.stderr
        mode, modules, backend = json.loads(result.stdout)
        assert mode == "accel"
        assert backend in ("ckernel", "mypyc")
        for canonical in COMPILED:
            assert canonical in modules

    def test_require_mode_without_build_raises(self, monkeypatch):
        """REPRO_ACCEL=1 with no manifest must fail loudly, not fall back."""
        name = "repro.storage.values"
        importlib.import_module(name)
        # install() will overwrite the loader's bookkeeping for this
        # module; pin the real entries so the rest of the suite is
        # untouched after teardown.
        monkeypatch.setitem(accel_loader._pure, name,
                            accel_loader._pure[name])
        monkeypatch.setitem(accel_loader._status, name,
                            accel_loader._status[name])
        monkeypatch.setattr(accel_loader, "_manifest_cache", None)
        monkeypatch.setenv("REPRO_ACCEL", "1")
        with pytest.raises(AccelUnavailableError):
            install({"__name__": name, "__all__": []})

    def test_module_absent_from_manifest_stays_pure(self, monkeypatch):
        """A backend that compiles only some modules leaves the rest pure
        silently — even under REPRO_ACCEL=1 (pure IS the built artifact)."""
        name = "repro.storage.values"
        importlib.import_module(name)
        monkeypatch.setitem(accel_loader._pure, name,
                            accel_loader._pure[name])
        monkeypatch.setitem(accel_loader._status, name,
                            accel_loader._status[name])
        monkeypatch.setattr(accel_loader, "_manifest_cache",
                            {"backend": "ckernel", "modules": []})
        monkeypatch.setenv("REPRO_ACCEL", "1")
        sentinel = object()
        namespace = {"__name__": name, "__all__": ["marker"],
                     "marker": sentinel}
        install(namespace)
        assert namespace["marker"] is sentinel

    @needs_accel
    def test_interpreted_subclass_of_swapped_event_is_legal(self):
        """The pure body of sim/process.py always executes and subclasses
        whatever Event the (possibly swapped) events namespace exports —
        so under any build, interpreted ``class X(Event)`` must work.
        Under the mypyc backend this exercises the
        ``allow_interpreted_subclasses`` escape hatch on the compiled
        Event; a build without it makes every ``import repro`` die here."""
        result = run_py(
            "import repro.sim.process\n"
            "from repro.sim.events import Event\n"
            "class Probe(Event):\n"
            "    __slots__ = ()\n"
            "print('subclassed')\n",
            REPRO_ACCEL="1",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "subclassed"

    def test_pure_namespace_survives_the_swap(self):
        """The snapshot hands back genuine pure-Python classes even when
        the ambient build swapped the canonical names."""
        snapshot = pure_namespace("repro.sim.simulator")
        simulator = snapshot["Simulator"]
        sim = simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 1.0
        # A genuinely pure method has Python bytecode behind it; the
        # compiled twins (C or mypyc-native) do not.
        assert hasattr(simulator.schedule, "__code__")


@needs_accel
class TestImportSurface:
    """Satellite: every compiled twin exposes the same public names as the
    pure module's ``__all__`` — the all-or-nothing swap depends on it."""

    @pytest.mark.parametrize("canonical", KERNEL_MODULES)
    def test_twin_exposes_every_public_name(self, canonical):
        if canonical not in COMPILED:
            pytest.skip(f"{canonical} not part of this build")
        twin = load_accel(canonical)
        public = importlib.import_module(canonical).__all__
        missing = [name for name in public if not hasattr(twin, name)]
        assert not missing, (
            f"compiled twin of {canonical} is missing {missing}")

    @pytest.mark.parametrize("canonical", KERNEL_MODULES)
    def test_pure_snapshot_has_every_public_name(self, canonical):
        snapshot = pure_namespace(canonical)
        public = importlib.import_module(canonical).__all__
        missing = [name for name in public if name not in snapshot]
        assert not missing


@needs_accel
class TestDualBuildDigests:
    """The acceptance oracle: pure and compiled builds must be
    bit-identical on every determinism digest, not just close."""

    E2E_CODE = (
        "import json, sys\n"
        "sys.path.insert(0, 'benchmarks')\n"
        "import bench_hotpath, repro\n"
        "digest = bench_hotpath.e2e_digest(\n"
        "    bench_hotpath.run_e2e(bench_hotpath.CONFIGS['smoke']['e2e']))\n"
        "print(json.dumps({'build': repro.build_mode(),\n"
        "                  'digest': digest}, sort_keys=True))\n"
    )

    def test_e2e_digest_identical_across_builds(self):
        pure = run_py(self.E2E_CODE, REPRO_ACCEL="0")
        accel = run_py(self.E2E_CODE, REPRO_ACCEL="1")
        assert pure.returncode == 0, pure.stderr
        assert accel.returncode == 0, accel.stderr
        pure_doc = json.loads(pure.stdout)
        accel_doc = json.loads(accel.stdout)
        # Both legs actually exercised their intended build...
        assert pure_doc["build"] == "pure"
        assert accel_doc["build"] == "accel"
        # ...and produced the same digest bit for bit.
        assert pure_doc["digest"] == accel_doc["digest"]

    def test_chaos_output_identical_across_builds(self):
        """Same fault seed, same storm, same report — the injector sits on
        top of the kernel, so the compiled build must not perturb it."""
        argv = ("from repro.cli import main\n"
                "main(['chaos', '3v', '--duration', '5', '--seed', '3',\n"
                "      '--fault-seed', '11'])\n")
        pure = run_py(argv, REPRO_ACCEL="0")
        accel = run_py(argv, REPRO_ACCEL="1")
        assert pure.returncode == 0, pure.stderr
        assert accel.returncode == 0, accel.stderr
        assert pure.stdout == accel.stdout

    def test_summary_records_build_mode(self):
        code = (
            "import json\n"
            "from repro.exp import ExperimentSpec, run_spec\n"
            "summary = run_spec(ExperimentSpec(protocol='3v', nodes=3,\n"
            "                                  duration=10.0, seed=7))\n"
            "print(json.dumps([summary.build_mode,\n"
            "                  summary.determinism_digest()]))\n"
        )
        pure = run_py(code, REPRO_ACCEL="0")
        accel = run_py(code, REPRO_ACCEL="1")
        assert pure.returncode == 0, pure.stderr
        assert accel.returncode == 0, accel.stderr
        pure_mode, pure_digest = json.loads(pure.stdout)
        accel_mode, accel_digest = json.loads(accel.stdout)
        assert (pure_mode, accel_mode) == ("pure", "accel")
        # build_mode is a reporting property, never part of the digest.
        assert pure_digest == accel_digest


class TestBenchBuildGate:
    """Satellite: ``--check`` refuses cross-build metric comparisons and
    ``--digest-only`` stays legal across builds.  Driven synthetically —
    no timing, never flaky."""

    @staticmethod
    def baseline(build_mode="pure", accel=None):
        doc = {
            "host": {"build_mode": build_mode, "build_backend": None},
            "metrics": {"a_per_sec": 100.0},
            "determinism": {"events": 42},
        }
        if accel is not None:
            doc["accel"] = accel
        return doc

    @staticmethod
    def fresh(mode="pure", backend=None, accel=None,
              metrics=None, determinism=None):
        doc = {
            "build": {"mode": mode, "backend": backend},
            "metrics": {"a_per_sec": 100.0} if metrics is None else metrics,
            "determinism": {"events": 42} if determinism is None
            else determinism,
        }
        if accel is not None:
            doc["accel"] = accel
        return doc

    def test_refuses_cross_build_metric_comparison(self):
        lines = []
        ok = bench_cli.check(self.baseline("pure"),
                             self.fresh(mode="accel", backend="ckernel"),
                             "full", 0.25, out=lines.append)
        assert not ok
        assert any("REFUSED" in line for line in lines)
        assert any("--digest-only" in line for line in lines)

    def test_matching_builds_compare_normally(self):
        assert bench_cli.check(self.baseline("pure"), self.fresh("pure"),
                               "full", 0.25, out=lambda *_: None)

    def test_baseline_without_build_stamp_defaults_to_pure(self):
        baseline = self.baseline("pure")
        del baseline["host"]
        assert bench_cli.check(baseline, self.fresh("pure"), "full", 0.25,
                               out=lambda *_: None)
        assert not bench_cli.check(baseline, self.fresh("accel", "ckernel"),
                                   "full", 0.25, out=lambda *_: None)

    def test_digest_only_is_legal_across_builds(self):
        assert bench_cli.check(self.baseline("pure"),
                               self.fresh(mode="accel", backend="ckernel"),
                               "full", 0.25, out=lambda *_: None,
                               digest_only=True)

    def test_digest_only_still_gates_determinism(self):
        fresh = self.fresh(mode="accel", backend="ckernel",
                           determinism={"events": 43})
        assert not bench_cli.check(self.baseline("pure"), fresh, "full",
                                   0.25, out=lambda *_: None,
                                   digest_only=True)

    def test_accel_section_skips_without_compiled_build(self):
        lines = []
        committed = {"backend": "ckernel",
                     "metrics": {"accel_counter_incs_speedup": 8.0}}
        ok = bench_cli.check(self.baseline("pure", accel=committed),
                             self.fresh("pure"), "full", 0.25,
                             out=lines.append)
        assert ok
        assert any("skipped" in line for line in lines)

    def test_accel_section_skips_on_backend_change(self):
        committed = {"backend": "ckernel",
                     "metrics": {"accel_counter_incs_speedup": 8.0}}
        measured = {"backend": "mypyc",
                    "metrics": {"accel_counter_incs_speedup": 2.0}}
        assert bench_cli.check(self.baseline("pure", accel=committed),
                               self.fresh("pure", accel=measured),
                               "full", 0.25, out=lambda *_: None)

    def test_accel_regression_gates(self):
        committed = {"backend": "ckernel",
                     "metrics": {"accel_counter_incs_speedup": 8.0}}
        measured = {"backend": "ckernel",
                    "metrics": {"accel_counter_incs_speedup": 2.0}}
        assert not bench_cli.check(self.baseline("pure", accel=committed),
                                   self.fresh("pure", accel=measured),
                                   "full", 0.25, out=lambda *_: None)

    def test_accel_missing_metric_fails(self):
        committed = {"backend": "ckernel",
                     "metrics": {"accel_counter_incs_speedup": 8.0}}
        measured = {"backend": "ckernel", "metrics": {}}
        assert not bench_cli.check(self.baseline("pure", accel=committed),
                                   self.fresh("pure", accel=measured),
                                   "full", 0.25, out=lambda *_: None)


class TestBuildSwapVerification:
    """``build_accel.py`` must prove the build is usable with the swap
    active (REPRO_ACCEL=1, canonical imports) — a twin that imports in
    isolation but breaks the swapped package would otherwise pass
    verification, write its manifest, and brick the checkout."""

    @needs_accel
    def test_verify_swap_passes_on_a_healthy_build(self):
        assert build_cli.verify_swap()

    def test_failed_swap_verification_removes_the_build(
            self, monkeypatch, tmp_path):
        accel_dir = tmp_path / "_accel"
        accel_dir.mkdir()
        manifest = accel_dir / "_manifest.json"
        # Redirect every artifact path into tmp so the real clean() runs
        # without touching the checkout's actual build.
        monkeypatch.setattr(build_cli, "ACCEL_DIR", str(accel_dir))
        monkeypatch.setattr(build_cli, "MYC_DIR", str(accel_dir / "_myc"))
        monkeypatch.setattr(build_cli, "MANIFEST", str(manifest))
        monkeypatch.setattr(build_cli, "have_c_toolchain", lambda: True)
        monkeypatch.setattr(build_cli, "build_ckernel",
                            lambda: sorted(build_cli.CKERNEL_SOURCES))
        monkeypatch.setattr(build_cli, "verify_import", lambda canonical: True)
        manifest_active = []

        def failing_swap():
            manifest_active.append(manifest.is_file())
            return False

        monkeypatch.setattr(build_cli, "verify_swap", failing_swap)
        assert build_cli.main(["--backend", "ckernel"]) == 1
        # The probe ran with the freshly written manifest active...
        assert manifest_active == [True]
        # ...and the failed build left no manifest behind.
        assert not manifest.is_file()


class TestVersionReporting:
    def test_version_string_names_the_build(self):
        result = run_py(
            "from repro.cli import _version_string\n"
            "print(_version_string())\n",
            REPRO_ACCEL="0",
        )
        assert result.returncode == 0, result.stderr
        assert "(build: pure)" in result.stdout

    @needs_accel
    def test_version_string_lists_compiled_modules(self):
        result = run_py(
            "from repro.cli import _version_string\n"
            "print(_version_string())\n",
            REPRO_ACCEL="1",
        )
        assert result.returncode == 0, result.stderr
        assert "build: accel/" in result.stdout
