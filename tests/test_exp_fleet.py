"""Tests for ``repro.exp`` — specs, fleets, grids, and the result cache.

The load-bearing guarantees:

* parallel determinism — ``jobs=1`` and ``jobs=4`` produce identical
  ordered summaries and determinism digests for the same task list;
* caching — a second run is served entirely from the cache (zero worker
  invocations) and ``refresh`` bypasses it;
* error transparency — a worker exception surfaces in the parent with
  the original traceback text and the failing task's index.
"""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.exp import (
    CellAggregate,
    ExperimentSpec,
    ExperimentSummary,
    Fleet,
    FleetTaskError,
    GridAxis,
    ResultCache,
    expand_grid,
    flatten_specs,
    parse_parameter_value,
    run_spec,
)

#: Small enough that one run is milliseconds; still drives every subsystem.
TINY = dict(nodes=2, duration=4.0, update_rate=3.0, inquiry_rate=2.0,
            audit_rate=0.2, entities=8, span=2)


def tiny(protocol: str = "3v", **overrides) -> ExperimentSpec:
    return ExperimentSpec(protocol, **{**TINY, **overrides})


def six_task_grid():
    """2 protocols x 3 seeds — the determinism test's task list."""
    return [tiny(protocol, seed=seed)
            for protocol in ("3v", "nocoord") for seed in (0, 1, 2)]


def masked(summaries):
    """Summaries with ``wall_seconds`` zeroed — the one deliberately
    machine-dependent field (excluded from the determinism digest), so
    bit-identity assertions must compare around it."""
    return [dataclasses.replace(s, wall_seconds=0.0) for s in summaries]


class TestSpec:
    def test_digest_stable_and_field_sensitive(self):
        spec = tiny()
        assert spec.digest() == tiny().digest()
        assert spec.digest() != spec.replace(seed=99).digest()

    def test_digest_distinguishes_int_from_float(self):
        # ``nodes 4`` and ``nodes 4.0`` are different specs: integer
        # parameters must stay exact ints end to end.
        assert tiny(nodes=2).digest() != tiny(nodes=2.0).digest()

    def test_run_kwargs_round_trip(self):
        kwargs = tiny().run_kwargs()
        assert "protocol" not in kwargs
        assert kwargs["nodes"] == 2
        assert kwargs["poll_interval"] == 0.5

    def test_parse_parameter_value_types(self):
        assert parse_parameter_value("nodes", "8") == 8
        assert isinstance(parse_parameter_value("nodes", "8"), int)
        assert parse_parameter_value("update-rate", "2.5") == 2.5

    def test_parse_parameter_value_rejects_bad_input(self):
        with pytest.raises(ReproError):
            parse_parameter_value("nodes", "2.5")
        with pytest.raises(ReproError):
            parse_parameter_value("quantumness", "1")


class TestSummary:
    def test_dict_round_trip_and_digest(self):
        summary = run_spec(tiny())
        clone = ExperimentSummary.from_dict(summary.to_dict())
        assert clone == summary
        assert clone.determinism_digest() == summary.determinism_digest()

    def test_rerun_is_bit_identical(self):
        first, second = run_spec(tiny()), run_spec(tiny())
        assert masked([first]) == masked([second])
        assert first.determinism_digest() == second.determinism_digest()


class TestGrid:
    def test_expansion_order_and_replicate_seeds(self):
        axes = [GridAxis("system", "protocol", ("3v", "nocoord")),
                GridAxis("nodes", "nodes", (2, 3))]
        cells = expand_grid(tiny(seed=7), axes, reps=2)
        assert [cell.values for cell in cells] == [
            ("3v", 2), ("3v", 3), ("nocoord", 2), ("nocoord", 3)]
        assert [spec.seed for spec in cells[0].specs] == [7, 8]
        assert len(flatten_specs(cells)) == 8

    def test_explicit_seed_axis_wins_over_reps(self):
        cells = expand_grid(
            tiny(seed=0), [GridAxis("seed", "seed", (40, 41))], reps=3)
        assert all(spec.seed == 40 for spec in cells[0].specs)

    def test_cell_aggregate(self):
        base = run_spec(tiny())
        bumped = dataclasses.replace(
            base, update_throughput=base.update_throughput + 1.0,
            aborted=3, fractured_reads=2, max_remote_wait=0.5,
            audit_clean=False,
        )
        aggregate = CellAggregate.of([base, bumped])
        assert aggregate.reps == 2
        assert aggregate.update_throughput == pytest.approx(
            base.update_throughput + 0.5)
        assert aggregate.aborted == base.aborted + 3
        assert aggregate.fractured_reads == base.fractured_reads + 2
        assert aggregate.max_remote_wait == 0.5
        assert not aggregate.audit_clean


class TestParallelDeterminism:
    def test_jobs1_vs_jobs4_identical(self):
        specs = six_task_grid()
        serial = Fleet(jobs=1).run(specs)
        parallel = Fleet(jobs=4).run(specs)
        assert masked(serial) == masked(parallel)
        assert ([s.determinism_digest() for s in serial]
                == [s.determinism_digest() for s in parallel])
        # Order follows task index, not completion order.
        assert [s.protocol for s in serial] == ["3v"] * 3 + ["nocoord"] * 3
        assert [s.spec_digest for s in serial] == [
            spec.digest() for spec in specs]

    def test_hash_seed_sensitive_protocols_identical(self):
        # 2pc commit rounds and lock release order once iterated raw sets,
        # leaking the per-process hash seed into message send order.
        # Spawned workers draw fresh random hash seeds, so serial vs
        # parallel equality is the regression test for that class of bug.
        specs = ([tiny("2pc", seed=seed) for seed in (0, 1)]
                 + [tiny(correction_rate=1.0, seed=seed) for seed in (0, 1)])
        serial = Fleet(jobs=1).run(specs)
        parallel = Fleet(jobs=2).run(specs)
        assert masked(serial) == masked(parallel)
        assert ([s.determinism_digest() for s in serial]
                == [s.determinism_digest() for s in parallel])


class TestCache:
    def test_second_run_served_from_cache(self, tmp_path):
        specs = six_task_grid()
        first = Fleet(jobs=1, cache=ResultCache(tmp_path))
        results = first.run(specs)
        assert first.stats.executed == 6 and first.stats.cached == 0

        second = Fleet(jobs=1, cache=ResultCache(tmp_path))
        cached = second.run(specs)
        assert second.stats.executed == 0, "expected zero worker invocations"
        assert second.stats.cached == 6
        assert cached == results

        refreshed = Fleet(jobs=1, cache=ResultCache(tmp_path), refresh=True)
        assert masked(refreshed.run(specs)) == masked(results)
        assert refreshed.stats.executed == 6 and refreshed.stats.cached == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        cache.put(spec, run_spec(spec))
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        assert cache.get(spec) is None

    def test_eviction_cap(self, tmp_path):
        cache = ResultCache(tmp_path, cap=2)
        summary = run_spec(tiny())
        for seed in range(4):
            cache.put(tiny(seed=seed), summary)
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert cache.stats.evictions == 2

    def test_key_depends_on_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key(tiny(seed=0)) != cache.key(tiny(seed=1))

    def test_pure_fingerprint_ignores_on_disk_build(self, monkeypatch):
        """Two identical pure runs must share a fingerprint whether or
        not compiled artifacts happen to sit on disk — only a build that
        is actually *running* may separate cache entries."""
        import repro
        from repro.exp import cache as cache_mod

        def fingerprint(mode, backend):
            monkeypatch.setattr(repro, "build_mode", lambda: mode)
            monkeypatch.setattr(repro, "accel_backend", lambda: backend)
            cache_mod._fingerprint = None
            try:
                return cache_mod.code_fingerprint()
            finally:
                cache_mod._fingerprint = None

        # A pure run with a build manifest on disk == a pure run without.
        assert fingerprint("pure", "ckernel") == fingerprint("pure", None)
        # An actually-running compiled kernel still gets its own entries,
        # keyed by backend.
        assert fingerprint("accel", "ckernel") != fingerprint("pure", None)
        assert fingerprint("accel", "ckernel") != fingerprint(
            "accel", "mypyc")


class TestWorkerErrors:
    def test_serial_error_carries_index_and_traceback(self):
        specs = [tiny(), ExperimentSpec("not-a-protocol", **TINY)]
        with pytest.raises(FleetTaskError) as excinfo:
            Fleet(jobs=1).run(specs)
        assert excinfo.value.index == 1
        assert "unknown protocol" in excinfo.value.traceback_text
        assert "Traceback" in excinfo.value.traceback_text

    def test_multiprocessing_error_carries_index_and_traceback(self):
        specs = [tiny(), ExperimentSpec("not-a-protocol", **TINY)]
        with pytest.raises(FleetTaskError) as excinfo:
            Fleet(jobs=2).run(specs)
        assert excinfo.value.index == 1
        assert "unknown protocol" in excinfo.value.traceback_text
        assert "Traceback" in excinfo.value.traceback_text
