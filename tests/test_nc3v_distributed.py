"""Distributed NC3V scenarios: deadlock cycles, mixed reads, scale."""

import pytest

from repro.analysis import audit, atomic_visibility_violations
from repro.core import ThreeVSystem
from repro.net import constant_latency
from repro.sim import RngRegistry
from repro.storage import Assign, Increment
from repro.txn import ReadOp, SubtxnSpec, TransactionSpec, WriteOp
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals


def nc_two_key(name, first_node, second_node, first_key, second_key, value):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node=first_node,
            ops=[WriteOp(first_key, Assign(value))],
            children=[
                SubtxnSpec(node=second_node,
                           ops=[WriteOp(second_key, Assign(value))])
            ],
        ),
    )


class TestDistributedDeadlock:
    def test_cycle_between_nc_txns_resolved_by_wait_die(self):
        """K1 locks x@p then y@q; K2 locks y@q then x@p — a distributed
        deadlock cycle.  Wait-die kills exactly one; the other commits."""
        system = ThreeVSystem(
            ["p", "q"], seed=4, allow_noncommuting=True,
            latency=constant_latency(2.0),
        )
        system.load("p", "x", 0)
        system.load("q", "y", 0)
        system.submit_at(1.0, nc_two_key("K1", "p", "q", "x", "y", 111))
        system.submit_at(1.2, nc_two_key("K2", "q", "p", "y", "x", 222))
        system.run_until_quiet()
        outcomes = {
            name: system.history.txn(name).aborted for name in ("K1", "K2")
        }
        assert sorted(outcomes.values()) == [False, True]
        winner = next(n for n, aborted in outcomes.items() if not aborted)
        value = 111 if winner == "K1" else 222
        # The winner's assigns are in place on both nodes; the loser's
        # rollback left nothing behind.
        assert system.node("p").store.get_exact("x", 1) == value
        assert system.node("q").store.get_exact("y", 1) == value
        # Counters converge through the abort: advancement completes.
        system.advance_versions()
        system.run_until_quiet()
        assert system.read_version == 1

    def test_loser_is_the_younger_transaction(self):
        system = ThreeVSystem(
            ["p", "q"], seed=4, allow_noncommuting=True,
            latency=constant_latency(2.0),
        )
        system.load("p", "x", 0)
        system.load("q", "y", 0)
        system.submit_at(1.0, nc_two_key("older", "p", "q", "x", "y", 1))
        system.submit_at(1.2, nc_two_key("younger", "q", "p", "y", "x", 2))
        system.run_until_quiet()
        assert not system.history.txn("older").aborted
        assert system.history.txn("younger").aborted


class TestNCReads:
    def test_nc_txn_can_read_and_write(self):
        """A correction that reads the current balance before overwriting
        (read at max version <= V(K))."""
        system = ThreeVSystem(["p"], seed=4, allow_noncommuting=True)
        system.load("p", "x", 40)
        # A committed well-behaved update brings version 1 to 50.
        system.submit(TransactionSpec(
            name="w",
            root=SubtxnSpec(node="p", ops=[WriteOp("x", Increment(10))]),
        ))
        system.run_until_quiet()
        spec = TransactionSpec(
            name="K",
            root=SubtxnSpec(node="p",
                            ops=[ReadOp("x"), WriteOp("x", Assign(0))]),
        )
        system.submit(spec)
        system.run_until_quiet()
        record = system.history.txn("K")
        assert not record.aborted
        # V(K) = 1, so the read saw the version-1 value (50), not 40.
        assert record.reads == [("x", 50)]
        assert system.node("p").store.get_exact("x", 1) == 0


class TestMixedTrafficAtomicity:
    def test_corrections_preserve_atomic_visibility(self):
        """With corrections assigning the same value on every node of an
        entity, the per-key equality oracle still applies: no read may
        observe a half-applied correction."""
        node_ids = ["n0", "n1", "n2", "n3"]
        system = ThreeVSystem(node_ids, seed=6, allow_noncommuting=True)
        config = RecordingConfig(nodes=node_ids, entities=8, span=3,
                                 amount_mode="bitmask")
        workload = RecordingWorkload(config, RngRegistry(7))
        workload.install(system)
        arrivals = RngRegistry(8)
        drive(system, poisson_arrivals(arrivals, "u", 5.0, 25.0),
              workload.make_recording)
        drive(system, poisson_arrivals(arrivals, "r", 4.0, 25.0),
              workload.make_inquiry)
        drive(system, poisson_arrivals(arrivals, "c", 0.4, 25.0),
              workload.make_correction)
        system.sim.schedule(12.0, system.advance_versions)
        system.run(until=25.0)
        system.run_until_quiet()
        nc = [r for r in system.history.txns.values()
              if r.kind == "noncommuting"]
        assert nc
        violations = atomic_visibility_violations(system.history)
        assert violations == []


class TestScaleSmoke:
    def test_thirty_two_nodes_stay_consistent(self):
        from repro.workloads import run_recording_experiment

        result = run_recording_experiment(
            "3v", nodes=32, duration=20.0, update_rate=40.0,
            inquiry_rate=15.0, audit_rate=0.5, entities=200, span=2,
            seed=12, amount_mode="bitmask",
        )
        report = audit(result.history, result.workload, check_snapshots=True)
        assert report.reads_checked > 200
        assert report.clean
        for node in result.system.nodes.values():
            assert node.store.max_live_versions <= 3
